package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
)

// testProber builds a prober whose probe outcomes are driven directly
// through observe — the rise/fall state machine under test is
// independent of the goroutine scheduling.
func testProber(t *testing.T, peers []string, onChange func(string, bool)) (*prober, *obs.Observer) {
	t.Helper()
	o := obs.New()
	p := newProber(peers, 0, nil, onChange, o.Metrics(), nil)
	return p, o
}

func TestProberFallThenRise(t *testing.T) {
	var flips []string
	p, o := testProber(t, []string{"a:1"}, func(peer string, up bool) {
		if up {
			flips = append(flips, peer+"=up")
		} else {
			flips = append(flips, peer+"=down")
		}
	})
	if !p.Up("a:1") {
		t.Fatal("peer must start optimistically up")
	}
	// One failure is a blip, not a verdict (fall threshold 2).
	p.observe("a:1", false)
	if !p.Up("a:1") || len(flips) != 0 {
		t.Fatalf("verdict flipped on a single failure: up=%v flips=%v", p.Up("a:1"), flips)
	}
	// Second consecutive failure flips down.
	p.observe("a:1", false)
	if p.Up("a:1") {
		t.Fatal("peer still up after fall-threshold failures")
	}
	if len(flips) != 1 || flips[0] != "a:1=down" {
		t.Fatalf("flips = %v, want [a:1=down]", flips)
	}
	if g := o.Metrics().Gauge("service_peer_up", obs.L("peer", "a:1")).Value(); g != 0 {
		t.Errorf("service_peer_up = %v, want 0", g)
	}
	// One success is not recovery (rise threshold 2)...
	p.observe("a:1", true)
	if p.Up("a:1") {
		t.Fatal("peer rose after a single success")
	}
	// ...two consecutive successes are.
	p.observe("a:1", true)
	if !p.Up("a:1") {
		t.Fatal("peer still down after rise-threshold successes")
	}
	if len(flips) != 2 || flips[1] != "a:1=up" {
		t.Fatalf("flips = %v, want [a:1=down a:1=up]", flips)
	}
	if g := o.Metrics().Gauge("service_peer_up", obs.L("peer", "a:1")).Value(); g != 1 {
		t.Errorf("service_peer_up = %v, want 1", g)
	}
}

// Alternating outcomes never accumulate a run, so a flapping peer stays
// at its last verdict instead of churning the ring epoch.
func TestProberFlappingPeerHoldsVerdict(t *testing.T) {
	flips := 0
	p, _ := testProber(t, []string{"a:1"}, func(string, bool) { flips++ })
	for i := 0; i < 20; i++ {
		p.observe("a:1", i%2 == 0)
	}
	if flips != 0 {
		t.Errorf("alternating outcomes caused %d verdict flips, want 0", flips)
	}
	if !p.Up("a:1") {
		t.Error("flapping peer lost its up verdict")
	}
}

func TestProberCountsOutcomes(t *testing.T) {
	p, o := testProber(t, []string{"a:1", "b:1"}, nil)
	p.observe("a:1", true)
	p.observe("b:1", false)
	p.observe("b:1", false)
	m := o.Metrics()
	if v := m.Counter("service_probe", obs.L("result", "ok")).Value(); v != 1 {
		t.Errorf("ok count = %v, want 1", v)
	}
	if v := m.Counter("service_probe", obs.L("result", "fail")).Value(); v != 2 {
		t.Errorf("fail count = %v, want 2", v)
	}
	// b flipped down, a untouched; verdicts are per-peer.
	if !p.Up("a:1") || p.Up("b:1") {
		t.Errorf("verdicts leaked across peers: a=%v b=%v", p.Up("a:1"), p.Up("b:1"))
	}
}

// A prober with an injected probe function must start, fire probes on
// its jittered schedule, and stop cleanly even when every probe fails.
func TestProberStartStop(t *testing.T) {
	probed := make(chan string, 64)
	p := newProber([]string{"a:1"}, 1, // ~1ns interval: probe immediately
		func(_ context.Context, peer string) error {
			select {
			case probed <- peer:
			default:
			}
			return errors.New("down")
		}, nil, obs.New().Metrics(), nil)
	p.Start()
	<-probed // at least one probe fired
	p.Stop() // must join without deadlock
}
