package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
)

// Every route answers a wrong-verb request with 405, the v1 error
// envelope, and an Allow header listing exactly the registered methods
// (plus the implicit HEAD next to GET) — driven off the route table
// itself, so a new route cannot dodge the contract.
func TestRouteMethodNotAllowed(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	allowed := map[string][]string{}
	for _, rt := range srv.routes() {
		allowed[rt.pattern] = append(allowed[rt.pattern], rt.method)
	}
	probes := []string{http.MethodGet, http.MethodPost, http.MethodPut,
		http.MethodDelete, http.MethodPatch}
	for pattern, methods := range allowed {
		path := strings.ReplaceAll(pattern, "{id}", "ffffffffffffffff")
		registered := map[string]bool{}
		for _, m := range methods {
			registered[m] = true
		}
		for _, method := range probes {
			// Registered verbs reach their real handlers (searches, SSE
			// subscriptions) — their behavior is covered elsewhere; here we
			// probe only the verbs the route table does not register.
			if registered[method] {
				continue
			}
			req, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
				continue
			}
			if got, want := resp.Header.Get("Allow"), allowHeader(methods); got != want {
				t.Errorf("%s %s: Allow %q, want %q", method, path, got, want)
			}
			var e api.Error
			if err := json.Unmarshal(body, &e); err != nil || e.Code != "method_not_allowed" || e.Schema != api.Schema {
				t.Errorf("%s %s: bad envelope %s", method, path, body)
			}
		}
	}
}

// Paths outside the v1 surface get the same 404 envelope unknown
// resources do — never the stdlib's plain-text 404.
func TestRouteNotFoundEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/", "/v1", "/v1/nope", "/v2/scale", "/favicon.ico"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
			continue
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil || e.Code != "not_found" || e.Schema != api.Schema {
			t.Errorf("GET %s: bad envelope %s", path, body)
		}
	}
}

// ?meta=1 wraps the decision in the meta envelope; the inner document
// is the untouched bare body and the headers stay exactly as before.
func TestMetaEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	respBare, bare := postScale(t, ts, `{"benchmark":"veccombine"}`)
	if respBare.StatusCode != http.StatusOK {
		t.Fatalf("bare scale: status %d: %s", respBare.StatusCode, bare)
	}
	id := respBare.Header.Get("X-Decision-Id")

	resp, err := http.Post(ts.URL+"/v1/scale?meta=1", "application/json",
		strings.NewReader(`{"benchmark":"veccombine"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta scale: status %d: %s", resp.StatusCode, body)
	}
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("meta scale: not an envelope: %v\n%s", err, body)
	}
	if env.Schema != api.Schema || env.Meta == nil {
		t.Fatalf("meta scale: incomplete envelope %s", body)
	}
	if env.Meta.DecisionID != id || env.Meta.DecisionID != resp.Header.Get("X-Decision-Id") {
		t.Errorf("meta decision_id %q, want %q (header %q)",
			env.Meta.DecisionID, id, resp.Header.Get("X-Decision-Id"))
	}
	if env.Meta.Cache != "hit" || env.Meta.Cache != resp.Header.Get("X-Cache") {
		t.Errorf("meta cache %q (header %q), want hit", env.Meta.Cache, resp.Header.Get("X-Cache"))
	}
	// The inner document re-encodes canonically to the bare body,
	// byte-for-byte (the envelope only re-indents the raw message).
	if got := recanonicalize(t, env.Decision); !bytes.Equal(got, bare) {
		t.Errorf("envelope decision differs from the bare body:\n%s\nvs\n%s", got, bare)
	}

	// GET /v1/decisions/{id}?meta=1 wraps the same way.
	getResp, err := http.Get(ts.URL + "/v1/decisions/" + id + "?meta=1")
	if err != nil {
		t.Fatal(err)
	}
	getBody, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	var getEnv api.Envelope
	if err := json.Unmarshal(getBody, &getEnv); err != nil {
		t.Fatalf("GET ?meta=1: %v: %s", err, getBody)
	}
	if got := recanonicalize(t, getEnv.Decision); !bytes.Equal(got, bare) {
		t.Errorf("GET ?meta=1: envelope decision differs from the bare body")
	}
}

// recanonicalize decodes an embedded decision document and re-encodes
// it through the canonical encoder.
func recanonicalize(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var d api.Decision
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("embedded decision: %v", err)
	}
	var buf bytes.Buffer
	if err := api.EncodeDecision(&buf, &d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
