package service

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Decision persistence: an append-only journal that makes the decision
// LRU survive kill -9.
//
// Layout under the persist dir:
//
//	decisions.snap   compacted snapshot (same record format as the WAL)
//	decisions.wal    append-only tail of decisions stored since the snapshot
//
// Record format (both files), length-prefixed and checksummed:
//
//	uint32 BE  payload length
//	uint32 BE  CRC-32 (IEEE) of payload
//	payload    16-byte fingerprint hex || canonical decision body
//
// Appends happen off the hot path: store() hands the record to a
// bounded channel and returns; a single writer goroutine batches
// whatever is queued, writes, and fsyncs once per batch. If the channel
// is full the record is dropped (counted in service_persist{event=
// "drop"}) — the journal is a warm-restart cache, not a ledger, and a
// dropped record costs one recomputed search after a crash, never
// correctness (the body is a pure function of the fingerprint).
//
// On startup the snapshot is replayed first, then the WAL; a corrupt
// record (torn write from the crash) truncates that file at the last
// good offset and replay continues — corruption is never fatal. When
// the WAL outgrows its threshold (and at drain), the writer compacts:
// the current cache contents are written to a fresh snapshot, renamed
// into place, and the WAL is truncated.

const (
	walFile         = "decisions.wal"
	snapFile        = "decisions.snap"
	defaultMaxWAL   = 8 << 20
	maxRecordSize   = 64 << 20 // replay sanity bound on one record
	journalQueueCap = 256
)

// persistRecord is one journaled decision.
type persistRecord struct {
	id   string
	body []byte
}

// journal is the append-only decision log. Create with openJournal;
// append is safe for concurrent use; Close drains, compacts, and joins
// the writer.
type journal struct {
	dir      string
	maxWAL   int64
	snapshot func() []persistRecord // current cache, oldest first
	logger   *slog.Logger

	appends   *obs.Counter
	drops     *obs.Counter
	compacts  *obs.Counter
	replayed  *obs.Counter
	truncated *obs.Counter

	ch   chan persistRecord
	done chan struct{}

	wal     *os.File // owned by the writer goroutine after start
	walSize int64
}

// openJournal opens (creating if needed) the journal under dir, replays
// both files, and starts the writer. The returned records are the
// surviving decisions, snapshot first then WAL, oldest first; the
// caller inserts them into the LRU before wiring the journal into the
// store path so replay never re-journals. snapshot supplies the cache
// contents at compaction time.
func openJournal(dir string, maxWAL int64, snapshot func() []persistRecord,
	m *obs.Registry, logger *slog.Logger) (*journal, []persistRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: persist dir: %w", err)
	}
	if maxWAL <= 0 {
		maxWAL = defaultMaxWAL
	}
	j := &journal{
		dir:       dir,
		maxWAL:    maxWAL,
		snapshot:  snapshot,
		logger:    logger,
		appends:   m.Counter("service_persist", obs.L("event", "append")),
		drops:     m.Counter("service_persist", obs.L("event", "drop")),
		compacts:  m.Counter("service_persist", obs.L("event", "compact")),
		replayed:  m.Counter("service_persist", obs.L("event", "replayed")),
		truncated: m.Counter("service_persist", obs.L("event", "corrupt_truncated")),
		ch:        make(chan persistRecord, journalQueueCap),
		done:      make(chan struct{}),
	}
	var records []persistRecord
	for _, name := range []string{snapFile, walFile} {
		recs, err := j.replayFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		records = append(records, recs...)
	}
	j.replayed.Add(float64(len(records)))

	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: open wal: %w", err)
	}
	st, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("service: stat wal: %w", err)
	}
	j.wal, j.walSize = wal, st.Size()
	go j.run()
	return j, records, nil
}

// replayFile reads every valid record of one journal file. A corrupt or
// torn record truncates the file at the last good offset; a missing
// file is empty.
func (j *journal) replayFile(path string) ([]persistRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: open %s: %w", path, err)
	}
	defer f.Close()
	var records []persistRecord
	var good int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return records, nil // clean end
			}
			break // torn header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n < 16 || n > maxRecordSize {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		records = append(records, persistRecord{id: string(payload[:16]), body: payload[16:]})
		good += 8 + int64(n)
	}
	// Fell out of the loop: the tail past `good` is corrupt. Truncate so
	// the next append starts on a record boundary.
	j.truncated.Inc()
	if j.logger != nil {
		j.logger.Warn("truncating corrupt journal tail", "path", path, "offset", good)
	}
	if err := f.Truncate(good); err != nil {
		return nil, fmt.Errorf("service: truncate %s: %w", path, err)
	}
	return records, nil
}

// append queues one decision for journaling. Never blocks: a full queue
// drops the record (warm-restart coverage degrades; correctness never).
func (j *journal) append(id string, body []byte) {
	if len(id) != 16 {
		return // ids are always %016x fingerprints; anything else is unjournalable
	}
	select {
	case j.ch <- persistRecord{id: id, body: body}:
	default:
		j.drops.Inc()
	}
}

// Close drains outstanding appends, compacts into a snapshot, and
// closes the files.
func (j *journal) Close() error {
	close(j.ch)
	<-j.done
	return nil
}

// run is the writer goroutine: batch whatever is queued, write it,
// fsync once, compact past the WAL threshold. On channel close it
// drains, compacts a final snapshot, and exits.
func (j *journal) run() {
	defer close(j.done)
	defer j.wal.Close()
	for rec := range j.ch {
		batch := []persistRecord{rec}
	drain:
		for {
			select {
			case more, ok := <-j.ch:
				if !ok {
					j.writeBatch(batch)
					j.compact()
					return
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		j.writeBatch(batch)
		if j.walSize > j.maxWAL {
			j.compact()
		}
	}
	j.compact()
}

// writeBatch appends records to the WAL with one fsync.
func (j *journal) writeBatch(batch []persistRecord) {
	for _, rec := range batch {
		n, err := j.wal.Write(encodeRecord(rec))
		j.walSize += int64(n)
		if err != nil {
			j.logError("wal write", err)
			return
		}
		j.appends.Inc()
	}
	if err := j.wal.Sync(); err != nil {
		j.logError("wal fsync", err)
	}
}

// encodeRecord renders one record in the on-disk format.
func encodeRecord(rec persistRecord) []byte {
	payload := make([]byte, 0, 16+len(rec.body))
	payload = append(payload, rec.id[:16]...)
	payload = append(payload, rec.body...)
	out := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// compact writes the current cache contents to a fresh snapshot,
// renames it into place, and truncates the WAL. Runs on the writer
// goroutine only.
func (j *journal) compact() {
	entries := j.snapshot()
	tmp := filepath.Join(j.dir, snapFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		j.logError("snapshot create", err)
		return
	}
	for _, rec := range entries {
		if _, err := f.Write(encodeRecord(rec)); err != nil {
			j.logError("snapshot write", err)
			f.Close()
			os.Remove(tmp)
			return
		}
	}
	if err := f.Sync(); err != nil {
		j.logError("snapshot fsync", err)
	}
	if err := f.Close(); err != nil {
		j.logError("snapshot close", err)
		return
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapFile)); err != nil {
		j.logError("snapshot rename", err)
		return
	}
	if err := j.wal.Truncate(0); err != nil {
		j.logError("wal truncate", err)
		return
	}
	// O_APPEND writes position at the (now zero) end on their own; reset
	// the accounted size to match.
	j.walSize = 0
	j.compacts.Inc()
}

func (j *journal) logError(what string, err error) {
	if j.logger != nil {
		j.logger.Error("journal "+what+" failed", "err", err.Error())
	}
}
