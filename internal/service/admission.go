package service

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/obs"
)

// shedError is the admission controller's rejection: the service will
// not start this search now, and the client should retry after the
// suggested delay. It maps to 429 + Retry-After in writeError, with the
// delay repeated as retry_after_seconds in the error envelope so JSON
// clients do not need to parse headers.
type shedError struct {
	reason     string // "queue_full" | "deadline"
	retryAfter int    // whole seconds, >= 1
	detail     string
}

func (e *shedError) Error() string {
	return fmt.Sprintf("overloaded (%s): %s; retry after %ds", e.reason, e.detail, e.retryAfter)
}

// waiter is one queued admission request. grant is closed by the
// dispatcher when a slot is handed over; granted/canceled are guarded
// by the fairQueue mutex and resolve the race between a hand-off and a
// client disconnect (exactly one side wins the slot).
type waiter struct {
	grant    chan struct{}
	granted  bool
	canceled bool
}

// fairQueue is the admission controller: a fixed pool of search slots
// fronted by a bounded queue with per-client round-robin dispatch.
//
// The previous design — a bare semaphore channel — had two fleet-scale
// failure modes: the queue behind it was unbounded and invisible (every
// request beyond Workers parked forever on the channel), and a single
// aggressive client could occupy every queue position, starving
// everyone else. Here each client id gets its own FIFO; freed slots are
// handed to the next client in round-robin order, so a client sending
// one request waits behind at most one request per competing client,
// not behind the flood. Total queued requests are capped at maxQueue;
// beyond it requests are shed immediately with 429.
type fairQueue struct {
	mu      sync.Mutex
	workers int // slot capacity
	busy    int // slots currently held
	maxQ    int // queued-waiter capacity
	depth   int // queued (not yet granted, not canceled) waiters

	queues map[string][]*waiter // per client id, FIFO
	order  []string             // round-robin ring of clients with waiters
	next   int                  // cursor into order

	depthGauge *obs.Gauge // service_queue_depth
	busyGauge  *obs.Gauge // service_workers_busy

	// jitter sources the ±20% spread on Retry-After estimates, so a
	// burst of shed clients doesn't retry in one synchronized wave.
	// Returns a value in [-1, 1); tests pin it for determinism.
	jitter func() float64
}

func newFairQueue(workers, maxQueue int, m *obs.Registry) *fairQueue {
	return &fairQueue{
		workers:    workers,
		maxQ:       maxQueue,
		queues:     map[string][]*waiter{},
		depthGauge: m.Gauge("service_queue_depth"),
		busyGauge:  m.Gauge("service_workers_busy"),
		jitter:     func() float64 { return 2*rand.Float64() - 1 },
	}
}

// Depth returns the current queued-waiter count.
func (q *fairQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// Busy returns the number of slots currently held.
func (q *fairQueue) Busy() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.busy
}

// Acquire blocks until a search slot is granted, the context dies, or
// the queue is full (immediate shedError). client keys the fairness
// queue; "" is a valid shared bucket. retryAfter estimates, from the
// current depth and the observed p99 search time, when a retry is
// likely to be admitted.
func (q *fairQueue) Acquire(ctx context.Context, client string, p99 func() float64) error {
	q.mu.Lock()
	if q.busy < q.workers && q.depth == 0 {
		q.busy++
		q.busyGauge.Set(float64(q.busy))
		q.mu.Unlock()
		return nil
	}
	if q.depth >= q.maxQ {
		depth := q.depth
		q.mu.Unlock()
		return &shedError{
			reason:     "queue_full",
			retryAfter: q.retryAfterSeconds(depth, p99()),
			detail:     fmt.Sprintf("admission queue at capacity (%d queued, %d workers)", depth, q.workers),
		}
	}
	w := &waiter{grant: make(chan struct{})}
	if len(q.queues[client]) == 0 {
		q.order = append(q.order, client)
	}
	q.queues[client] = append(q.queues[client], w)
	q.depth++
	q.depthGauge.Set(float64(q.depth))
	q.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The dispatcher handed us a slot in the same instant the
			// client vanished: give it straight back.
			q.releaseLocked()
			q.mu.Unlock()
			return ctxCause(ctx)
		}
		w.canceled = true
		q.depth--
		q.depthGauge.Set(float64(q.depth))
		q.mu.Unlock()
		return ctxCause(ctx)
	}
}

// Release returns a slot to the pool, handing it directly to the next
// queued waiter (round-robin across clients) when one exists.
func (q *fairQueue) Release() {
	q.mu.Lock()
	q.releaseLocked()
	q.mu.Unlock()
}

func (q *fairQueue) releaseLocked() {
	// Hand the slot to the next live waiter, skipping (and discarding)
	// canceled ones — their depth contribution was removed at cancel
	// time. Clients whose FIFO empties leave the round-robin ring.
	for len(q.order) > 0 {
		if q.next >= len(q.order) {
			q.next = 0
		}
		client := q.order[q.next]
		fifo := q.queues[client]
		for len(fifo) > 0 {
			w := fifo[0]
			fifo = fifo[1:]
			if w.canceled {
				continue
			}
			// Grant: the slot transfers without touching busy.
			w.granted = true
			close(w.grant)
			q.depth--
			q.depthGauge.Set(float64(q.depth))
			if len(fifo) == 0 {
				delete(q.queues, client)
				q.order = append(q.order[:q.next], q.order[q.next+1:]...)
			} else {
				q.queues[client] = fifo
				q.next++
			}
			return
		}
		// FIFO held only canceled waiters: drop the client and keep
		// scanning from the same cursor position.
		delete(q.queues, client)
		q.order = append(q.order[:q.next], q.order[q.next+1:]...)
	}
	q.busy--
	q.busyGauge.Set(float64(q.busy))
}

// retryAfterSeconds estimates when a shed client should retry: the
// queue ahead of it divided by the worker pool, paced by the observed
// p99 search time, spread by ±20% jitter so the clients shed during one
// overload spike don't all come back in the same second. The jittered
// value goes to both the Retry-After header and the JSON
// retry_after_seconds field. Clamped to [1, 60] — Retry-After is a
// hint, not a promise.
func (q *fairQueue) retryAfterSeconds(depth int, p99 float64) int {
	workers := q.workers
	if workers < 1 {
		workers = 1
	}
	if p99 <= 0 {
		p99 = 0.1 // no observations yet: assume a fast search
	}
	est := float64(depth+1) / float64(workers) * p99
	est = math.Ceil(est * (1 + 0.2*q.jitter()))
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return int(est)
}

// deadlineShed decides whether a request with the given client deadline
// budget (milliseconds; 0 = none) can possibly be answered in time: the
// expected wait is one p99 search for each full wave of queued requests
// ahead of it plus its own search. Requests that cannot meet their
// deadline are shed immediately — running a search whose client will
// have given up by completion burns a slot for nobody.
func (q *fairQueue) deadlineShed(deadlineMs int, p99 func() float64) *shedError {
	if deadlineMs <= 0 {
		return nil
	}
	p := p99()
	if p <= 0 {
		return nil // no latency observations yet: admit optimistically
	}
	q.mu.Lock()
	depth, workers := q.depth, q.workers
	q.mu.Unlock()
	waves := float64(depth)/float64(workers) + 1
	estMs := waves * p * 1e3
	if estMs <= float64(deadlineMs) {
		return nil
	}
	return &shedError{
		reason:     "deadline",
		retryAfter: q.retryAfterSeconds(depth, p),
		detail: fmt.Sprintf("estimated completion %.0fms exceeds deadline %dms (p99 search %.0fms, %d queued)",
			estMs, deadlineMs, p*1e3, depth),
	}
}
