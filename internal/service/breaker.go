package service

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: requests flow
	breakerHalfOpen                     // backoff elapsed: one trial request probes the peer
	breakerOpen                         // peer considered down: requests skip it instantly
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker tuning. Defaults are chosen so a dead peer costs
// defaultBreakerThreshold fast connection failures before every
// subsequent request skips it without dialing, and a recovered peer is
// re-admitted within a couple of seconds.
const (
	defaultBreakerThreshold = 3
	defaultBreakerBackoff   = 500 * time.Millisecond
	defaultBreakerMax       = 30 * time.Second
)

// breaker is a per-peer circuit breaker guarding the proxy path.
// Closed, consecutive failures up to the threshold trip it open; while
// open, Allow refuses instantly until the backoff elapses, then admits
// exactly one half-open trial. A trial success closes the breaker and
// resets the backoff; a trial failure re-opens it with the backoff
// doubled (capped, and jittered so a fleet's breakers don't retry a
// recovering peer in lockstep). The health prober can also force the
// state directly — probe-down opens, probe-up closes — so a peer's
// death is reflected within one probe interval even on a node that
// never proxied to it.
type breaker struct {
	mu      sync.Mutex
	state   breakerState
	fails   int           // consecutive failures while closed
	until   time.Time     // while open: earliest half-open trial
	backoff time.Duration // current open→half-open delay
	trial   bool          // half-open probe currently in flight

	threshold int
	base, max time.Duration
	now       func() time.Time // test hook; time.Now in production
	jitter    func() float64   // test hook; [0,1) multiplier source
	gauge     *obs.Gauge       // service_breaker_state{peer}: 0/1/2
}

func newBreaker(gauge *obs.Gauge) *breaker {
	b := &breaker{
		threshold: defaultBreakerThreshold,
		base:      defaultBreakerBackoff,
		max:       defaultBreakerMax,
		backoff:   defaultBreakerBackoff,
		now:       time.Now,
		jitter:    rand.Float64,
		gauge:     gauge,
	}
	b.publish()
	return b
}

// publish mirrors the state into the gauge. Caller holds b.mu (or the
// breaker is not yet shared).
func (b *breaker) publish() {
	if b.gauge != nil {
		b.gauge.Set(float64(b.state))
	}
}

// Allow reports whether a request may be sent to the peer right now.
// While open it flips to half-open once the backoff has elapsed and
// admits a single trial; the caller must report the trial's outcome
// through Success or Failure.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		if b.trial {
			return false
		}
		b.trial = true
		return true
	default: // breakerOpen
		if b.now().Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		b.trial = true
		b.publish()
		return true
	}
}

// Success records a request that reached the peer (any HTTP answer
// counts — a 429 from a live peer is still a live peer): the breaker
// closes and the backoff resets.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.trial = false
	b.backoff = b.base
	b.publish()
}

// Failure records a failed attempt (connect error, timeout, or 5xx).
// Closed, it counts toward the threshold; half-open, the trial failed
// and the breaker re-opens with doubled backoff.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openLocked()
		}
	case breakerHalfOpen:
		b.backoff = min(2*b.backoff, b.max)
		b.openLocked()
	}
}

// openLocked trips the breaker with the current backoff plus up to 25%
// jitter. Caller holds b.mu.
func (b *breaker) openLocked() {
	b.state = breakerOpen
	b.trial = false
	b.fails = 0
	b.until = b.now().Add(b.backoff + time.Duration(b.jitter()*0.25*float64(b.backoff)))
	b.publish()
}

// ForceOpen trips the breaker immediately (health probe reported the
// peer down). The backoff is left as-is: proxy traffic arriving before
// the probe's rise verdict still half-open-probes on the usual
// schedule.
func (b *breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		b.openLocked()
	}
}

// ForceClose resets the breaker (health probe reported the peer up).
func (b *breaker) ForceClose() {
	b.Success()
}

// State returns the current state for health reporting.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
