package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/scaler"
	"repro/internal/wltest"
)

// testWorkloads resolves the synthetic test benchmarks the way
// polybench.ByName resolves the real ones.
func testWorkloads(name string) *prog.Workload {
	switch name {
	case "veccombine":
		return wltest.VecCombine(1 << 12)
	case "halfhostile":
		return wltest.HalfHostile(1 << 10)
	}
	return nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workload == nil {
		cfg.Workload = testWorkloads
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postScale(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/scale", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// The daemon's decision body must be byte-identical to what
// cmd/prescaler -json produces for the same workload and options: the
// same Normalize defaults, the same core search, the same canonical
// encoder.
func TestScaleMatchesCLIOutput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, got := postScale(t, ts, `{"benchmark":"veccombine"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if c := resp.Header.Get("X-Cache"); c != "miss" {
		t.Errorf("X-Cache = %q, want miss", c)
	}

	// The CLI path, verbatim: defaults via Normalize, search via
	// core.Framework.Scale, canonical encoding via api.EncodeDecision.
	sys := hw.System1()
	fw := core.NewFramework(sys)
	opts, err := scaler.Options{Retries: 2}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := fw.Scale(context.Background(), wltest.VecCombine(1<<12), opts)
	if err != nil {
		t.Fatal(err)
	}
	d := api.NewDecision(sys, wltest.VecCombine(1<<12), sp.Search, opts.TOQ, opts.InputSet)
	var want bytes.Buffer
	if err := api.EncodeDecision(&want, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("daemon body differs from CLI encoding:\ndaemon:\n%s\ncli:\n%s", got, want.Bytes())
	}
}

// A repeated request must be served from the decision cache — hit
// counter up, X-Cache: hit — with the byte-identical body, and the
// decision must stay addressable under GET /v1/decisions/{id}.
func TestScaleCacheHit(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, Config{Obs: o})
	req := `{"benchmark":"veccombine","toq":0.95}`
	resp1, body1 := postScale(t, ts, req)
	resp2, body2 := postScale(t, ts, req)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
	}
	if c := resp2.Header.Get("X-Cache"); c != "hit" {
		t.Errorf("second X-Cache = %q, want hit", c)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit body differs from the original")
	}
	id1, id2 := resp1.Header.Get("X-Decision-Id"), resp2.Header.Get("X-Decision-Id")
	if id1 == "" || id1 != id2 {
		t.Errorf("decision ids %q / %q, want equal and non-empty", id1, id2)
	}
	if v := o.Metrics().Counter("service_cache", obs.L("result", "hit")).Value(); v != 1 {
		t.Errorf("cache hit counter = %v, want 1", v)
	}

	resp, err := http.Get(ts.URL + "/v1/decisions/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body3, body1) {
		t.Errorf("GET /v1/decisions/%s: status %d, body equal %v", id1, resp.StatusCode, bytes.Equal(body3, body1))
	}

	// A decision-affecting option must miss: different fingerprint.
	resp3, _ := postScale(t, ts, `{"benchmark":"veccombine","toq":0.5}`)
	if c := resp3.Header.Get("X-Cache"); c != "miss" {
		t.Errorf("different TOQ X-Cache = %q, want miss", c)
	}
	if id3 := resp3.Header.Get("X-Decision-Id"); id3 == id1 {
		t.Error("different TOQ produced the same fingerprint")
	}
}

// A client disconnect must cancel the in-flight search at a trial
// boundary and release the worker slot for the next request.
func TestCancelReleasesWorkerSlot(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{Workers: 1, Obs: o})
	started := make(chan struct{})
	// The hook runs after the slot is acquired and before the search:
	// hold the first search until its request context actually dies, so
	// the very first trial-boundary check sees the cancellation. Later
	// searches pass straight through (the hook is installed once, before
	// any traffic, and never mutated — handlers read it concurrently).
	var once sync.Once
	srv.testSearchStarted = func(ctx context.Context, bench string) {
		first := false
		once.Do(func() { first = true })
		if first {
			close(started)
			<-ctx.Done()
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/scale",
		strings.NewReader(`{"benchmark":"veccombine"}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response")
	}

	// The slot must be free again: a second request completes.
	resp, body := postScale(t, ts, `{"benchmark":"veccombine"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request: status %d: %s", resp.StatusCode, body)
	}
	if v := o.Metrics().Counter("service_searches", obs.L("result", "canceled")).Value(); v != 1 {
		t.Errorf("canceled-search counter = %v, want 1", v)
	}
	if v := o.Metrics().Counter("service_searches", obs.L("result", "ok")).Value(); v != 1 {
		t.Errorf("ok-search counter = %v, want 1", v)
	}
}

// Every error class maps to its deterministic (status, code) pair.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"unknown benchmark", `{"benchmark":"NOPE"}`, http.StatusNotFound, "not_found"},
		{"unknown system", `{"benchmark":"veccombine","system":"system9"}`, http.StatusNotFound, "not_found"},
		{"bad toq", `{"benchmark":"veccombine","toq":1.5}`, http.StatusBadRequest, "bad_request"},
		{"bad input set", `{"benchmark":"veccombine","input_set":"weird"}`, http.StatusBadRequest, "bad_request"},
		{"bad fault spec", `{"benchmark":"veccombine","faults":"gremlins:1"}`, http.StatusBadRequest, "bad_request"},
		{"malformed json", `{`, http.StatusBadRequest, "bad_request"},
		{"future schema", `{"schema":"prescaler/v2","benchmark":"veccombine"}`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"benchmark":"veccombine","tooq":0.9}`, http.StatusBadRequest, "bad_request"},
		{"device lost", `{"benchmark":"veccombine","faults":"devlost:1"}`, http.StatusBadGateway, "device_lost"},
	}
	for _, c := range cases {
		resp, body := postScale(t, ts, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
			continue
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: non-envelope error body %s", c.name, body)
			continue
		}
		if e.Code != c.code || e.Schema != api.Schema {
			t.Errorf("%s: envelope %+v, want code %q", c.name, e, c.code)
		}
	}

	// Unknown decision id.
	resp, err := http.Get(ts.URL + "/v1/decisions/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown decision: status %d, want 404", resp.StatusCode)
	}
}

// GET /v1/systems lists every preset with its inspector inventory;
// healthz and metricsz respond and reflect traffic.
func TestIntrospectionEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("inspects all system presets")
	}
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("systems: status %d", resp.StatusCode)
	}
	var systems []*api.System
	if err := json.Unmarshal(body, &systems); err != nil {
		t.Fatal(err)
	}
	if len(systems) != len(hw.Systems()) {
		t.Errorf("systems: %d entries, want %d", len(systems), len(hw.Systems()))
	}
	for _, s := range systems {
		if s.Schema != api.Schema || s.Curves == 0 || len(s.Sizes) == 0 {
			t.Errorf("system %s: incomplete inventory %+v", s.Name, s)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Workers < 1 {
		t.Errorf("healthz: %s", body)
	}

	resp, err = http.Get(ts.URL + "/v1/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "service_requests") {
		t.Errorf("metricsz missing request counters:\n%s", body)
	}
}
