// Package service implements the PreScaler decision service: the HTTP
// layer of cmd/prescalerd. It turns the one-shot offline pipeline
// (System Inspector → Application Profiler → Decision Maker) into a
// resident daemon that amortizes inspection across requests, memoizes
// completed decisions, and cancels in-flight searches when the client
// goes away.
//
// Endpoints (all JSON, schema "prescaler/v1", see internal/api):
//
//	POST /v1/scale                  submit a workload, get a Decision
//	POST /v1/scale?fingerprint=1    validate + fingerprint, don't search
//	GET  /v1/decisions/{id}         re-fetch a completed Decision
//	GET  /v1/decisions/{id}/trace   wall-clock Chrome trace of the search
//	GET  /v1/decisions/{id}/events  live decision progress over SSE
//	POST /v1/sessions               create a session (cold search, gen 1)
//	GET  /v1/sessions/{id}          session document + current decision
//	POST /v1/sessions/{id}/evaluate execute a batch; report drift; may re-scale
//	DELETE /v1/sessions/{id}        close a session
//	GET  /v1/sessions/{id}/events   session lifecycle over SSE
//	GET  /v1/systems                system presets + inspector DB inventory
//	GET  /v1/healthz                liveness, pool occupancy, latency quantiles
//	GET  /v1/metricsz               the obs metrics registry as CSV
//	GET  /metrics                   the same registry, Prometheus exposition
//
// The route table (routes.go) also derives the negative surface: wrong
// verbs answer 405 + Allow and unknown paths 404, both in the standard
// error envelope, and ?meta=1 on the decision-returning routes wraps
// the body in an envelope carrying the response-header metadata.
// Sessions (session.go) are long-lived decisions that re-scale
// themselves: each evaluate folds the batch into per-object running
// statistics, and a normalized shift past the session's drift
// threshold — or an achieved quality below TOQ — triggers a
// warm-started re-search seeded from the previous generation's config
// and error attribution (see DESIGN.md §19).
//
// Telemetry is a strict side channel. Decision bodies are a pure
// function of (inspector DB, workload, options) — request ids travel in
// the X-Request-Id header and structured logs, cache status in X-Cache,
// progress over SSE, latency in /metrics — so the bodies stay
// byte-identical with telemetry on or off, and identical to
// cmd/prescaler -json output.
//
// Requests run on a bounded worker pool behind an admission
// controller: a bounded per-client fair queue (round-robin dispatch, so
// one flooding client cannot starve the rest), deadline-aware load
// shedding (429 + Retry-After when the queue is full or the declared
// X-Deadline-Ms cannot be met given the observed p99 search time), and
// single-flight coalescing — N concurrent requests that fingerprint to
// the same decision run exactly one search and fan its body out to all
// subscribers (X-Cache: coalesced). Each search runs on a clone of a
// per-system base Framework (the same isolation pattern as the
// parallel experiment runner) and shares one EvalCache per
// (system, benchmark) pair, so repeat traffic for the same pair reuses
// op results across requests. Completed decisions land in an LRU cache
// keyed by an FNV-64a fingerprint of everything that determines the
// result — inspector database, workload identity, and the
// decision-affecting options — so a repeated request is O(lookup) and
// returns the byte-identical body (the fingerprint deliberately
// excludes Workers and the eval cache, which change only wall-clock
// time, never the decision).
//
// In a fleet (Config.Self + Config.Peers), the decision cache is
// sharded across nodes by a consistent-hash ring over the same
// fingerprint (internal/cluster): a non-owner node proxies /v1/scale
// to the owner (X-Cache: remote) and computes locally only when the
// owner is unreachable. Because bodies are pure functions of the
// fingerprint, any node answers any request with byte-identical bytes —
// sharding changes where work happens and caches live, never what the
// client sees.
package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/ocl"
	"repro/internal/polybench"
	"repro/internal/prog"
	"repro/internal/scaler"
)

// Config parameterizes a Server. The zero value is a working default.
type Config struct {
	// Workers bounds the number of concurrent searches; requests beyond
	// it queue until a slot frees (or their client disconnects). 0
	// selects GOMAXPROCS via scaler.Options.Normalize.
	Workers int
	// MaxQueue bounds the admission queue: requests beyond Workers wait
	// here, and requests beyond MaxQueue are shed immediately with 429 +
	// Retry-After. 0 selects 4x the resolved worker count.
	MaxQueue int
	// Self is this node's advertised address ("host:port") in a
	// cluster; Peers is the rest of the membership. When Peers is
	// non-empty, the decision cache is sharded across the fleet by a
	// consistent-hash ring over the fingerprint: non-owner nodes proxy
	// /v1/scale to the owner and fall back to local compute when it is
	// unreachable. Empty Peers disables clustering.
	Self  string
	Peers []string
	// Replication is the number of ring owners per fingerprint. 1 (the
	// default) is pure sharding; above 1, the primary owner computes and
	// asynchronously warms the other replicas' caches, and requests
	// fail over through the replica list when the primary is down.
	// Ignored outside a cluster.
	Replication int
	// ProxyClient issues proxied scale requests to peer nodes; nil
	// selects a default client. Each proxy attempt additionally runs
	// under ProxyAttemptTimeout.
	ProxyClient *http.Client
	// ProxyAttemptTimeout bounds one proxied attempt to one replica; 0
	// selects 15s. Failing attempts walk the replica list, so this is
	// the worst-case cost of a hung (not dead — dead fails at connect)
	// peer per request.
	ProxyAttemptTimeout time.Duration
	// ProbeInterval paces the active peer health prober in a cluster; 0
	// selects 2s. Probes feed the liveness overlay of the membership
	// view (dead peers leave the effective ring within roughly one
	// interval) and the per-peer circuit breakers.
	ProbeInterval time.Duration
	// DisableProber turns off the active health prober (tests that want
	// deterministic membership drive SetAlive themselves). Breakers
	// still learn from proxy failures.
	DisableProber bool
	// PersistDir, when non-empty, enables the crash-safe decision
	// journal: completed decisions are appended (checksummed, fsync'd
	// off the hot path) under this directory and replayed into the LRU
	// at startup, so a restarted node serves its hot set as cache hits
	// instead of re-searching.
	PersistDir string
	// PersistMaxWAL is the WAL size (bytes) beyond which the journal is
	// compacted into a snapshot; 0 selects 8 MiB.
	PersistMaxWAL int64
	// CacheSize is the decision LRU capacity in entries; 0 selects 128.
	CacheSize int
	// Obs receives the service metrics (request counters, cache
	// hit/miss, pool occupancy) and is what /v1/metricsz renders. Nil
	// allocates a private observer so the endpoint always works.
	Obs *obs.Observer
	// Workload resolves a benchmark name; nil selects polybench.ByName.
	// Tests inject synthetic workloads here.
	Workload func(name string) *prog.Workload
	// Logger receives structured request logs (one line per request) and
	// panic reports. Nil disables logging; everything else still works.
	Logger *slog.Logger
	// DisableTelemetry turns off the per-request side channels: the
	// middleware stack (request ids, access logs, panic recovery,
	// latency histogram), wall-clock traces, and SSE progress events.
	// The endpoints stay mounted but have nothing to serve. Exists so
	// tests can pin that decision bodies are byte-identical with
	// telemetry on or off.
	DisableTelemetry bool
	// SessionTTL is the idle expiry for sessions (POST /v1/sessions):
	// a session untouched for this long is reclaimed lazily. Individual
	// sessions may shorten it via ttl_seconds. 0 selects 1h.
	SessionTTL time.Duration
	// MaxSessions bounds the session store; creating past it evicts the
	// least recently used session. 0 selects 64.
	MaxSessions int
}

// defaultCacheSize is the decision LRU capacity when Config leaves it 0.
const defaultCacheSize = 128

// Server is the decision service. Create with New, serve via Handler.
type Server struct {
	obs      *obs.Observer
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the telemetry middleware
	admit    *fairQueue
	workload func(name string) *prog.Workload

	logger        *slog.Logger
	telemetryOff  bool
	start         time.Time
	hub           *eventHub
	latency       *obs.Histogram // http_request_seconds, fed by middleware
	queueWait     *obs.Histogram // service_queue_wait_seconds, slot waits
	searchSeconds *obs.Histogram // service_search_seconds, drives deadline shedding

	view                *cluster.View // nil outside a cluster
	self                string        // this node's ring identity
	replication         int           // ring owners per fingerprint
	proxy               *http.Client  // issues proxied scale requests
	proxyAttemptTimeout time.Duration
	warmClient          *http.Client        // pushes decisions to replicas
	breakers            map[string]*breaker // per peer
	prober              *prober             // nil outside a cluster or when disabled
	epochGauge          *obs.Gauge          // service_cluster_epoch
	journal             *journal            // nil without PersistDir

	mu     sync.Mutex
	bases  map[string]*core.Framework // per system preset, inspected once
	caches map[string]*prog.EvalCache // per (system, benchmark) pair

	fmu     sync.Mutex
	flights map[string]*flight // fingerprint hex -> in-flight search

	cmu     sync.Mutex
	lru     *list.List               // front = most recent; values are *entry
	byID    map[string]*list.Element // fingerprint hex -> element
	hits    int64
	misses  int64
	maxSize int

	// Session store (see session.go). Lock order is smu before a
	// session's own mu, never the reverse.
	smu         sync.Mutex
	sessions    map[string]*session
	sessSeq     uint64
	sessTTL     time.Duration
	maxSessions int
	sessGauge   *obs.Gauge
	now         func() time.Time // injectable clock for session-TTL tests

	// testSearchStarted, when set, is called by the worker after the
	// slot is acquired and before the search runs — a deterministic
	// point for tests to cancel the request context.
	testSearchStarted func(ctx context.Context, bench string)
	// testWarmed, when set, is called after warmReplicas finishes
	// pushing a decision — a deterministic point for tests to assert
	// replica cache state.
	testWarmed func(id string)
}

// entry is one cached decision: the canonical response body, the id it
// is addressable under, and the wall-clock trace of the search that
// produced it (nil for telemetry-off servers).
type entry struct {
	id    string
	body  []byte
	trace []byte
}

// New builds a Server. The worker pool and caches start empty; system
// inspection happens lazily on first use of each preset.
func New(cfg Config) (*Server, error) {
	opts, err := scaler.Options{Workers: cfg.Workers}.Normalize()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	size := cfg.CacheSize
	if size == 0 {
		size = defaultCacheSize
	}
	if size < 0 {
		return nil, fmt.Errorf("service: negative CacheSize %d", cfg.CacheSize)
	}
	wl := cfg.Workload
	if wl == nil {
		wl = polybench.ByName
	}
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = 4 * opts.Workers
	}
	if maxQueue < 0 {
		return nil, fmt.Errorf("service: negative MaxQueue %d", cfg.MaxQueue)
	}
	sessTTL := cfg.SessionTTL
	if sessTTL == 0 {
		sessTTL = defaultSessionTTL
	}
	if sessTTL < 0 {
		return nil, fmt.Errorf("service: negative SessionTTL %v", cfg.SessionTTL)
	}
	maxSessions := cfg.MaxSessions
	if maxSessions == 0 {
		maxSessions = defaultMaxSessions
	}
	if maxSessions < 0 {
		return nil, fmt.Errorf("service: negative MaxSessions %d", cfg.MaxSessions)
	}
	s := &Server{
		obs:           o,
		admit:         newFairQueue(opts.Workers, maxQueue, o.Metrics()),
		workload:      wl,
		logger:        cfg.Logger,
		telemetryOff:  cfg.DisableTelemetry,
		start:         time.Now(),
		hub:           newEventHub(),
		latency:       o.Metrics().Histogram("http_request_seconds", obs.DefaultLatencyBuckets),
		queueWait:     o.Metrics().Histogram("service_queue_wait_seconds", obs.DefaultLatencyBuckets),
		searchSeconds: o.Metrics().Histogram("service_search_seconds", obs.DefaultLatencyBuckets),
		bases:         map[string]*core.Framework{},
		caches:        map[string]*prog.EvalCache{},
		flights:       map[string]*flight{},
		lru:           list.New(),
		byID:          map[string]*list.Element{},
		maxSize:       size,
		sessions:      map[string]*session{},
		sessTTL:       sessTTL,
		maxSessions:   maxSessions,
		sessGauge:     o.Metrics().Gauge("service_sessions"),
		now:           time.Now,
	}
	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, fmt.Errorf("service: Peers set without Self")
		}
		view, err := cluster.NewView(append([]string{cfg.Self}, cfg.Peers...), 0)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.view, s.self = view, cfg.Self
		s.replication = cfg.Replication
		if s.replication == 0 {
			s.replication = 1
		}
		if s.replication < 0 {
			return nil, fmt.Errorf("service: negative Replication %d", cfg.Replication)
		}
		s.proxy = cfg.ProxyClient
		if s.proxy == nil {
			s.proxy = &http.Client{Timeout: defaultProxyTimeout}
		}
		s.proxyAttemptTimeout = cfg.ProxyAttemptTimeout
		if s.proxyAttemptTimeout <= 0 {
			s.proxyAttemptTimeout = defaultProxyAttemptTimeout
		}
		s.warmClient = &http.Client{Timeout: defaultWarmTimeout}
		s.epochGauge = o.Metrics().Gauge("service_cluster_epoch")
		s.epochGauge.Set(float64(view.Epoch()))
		s.breakers = map[string]*breaker{}
		for _, peer := range cfg.Peers {
			if peer == cfg.Self {
				continue
			}
			s.breakers[peer] = newBreaker(
				o.Metrics().Gauge("service_breaker_state", obs.L("peer", peer)))
		}
		if !cfg.DisableProber {
			peers := make([]string, 0, len(s.breakers))
			for peer := range s.breakers {
				peers = append(peers, peer)
			}
			sort.Strings(peers)
			s.prober = newProber(peers, cfg.ProbeInterval, nil, s.onPeerChange,
				o.Metrics(), cfg.Logger)
			s.prober.Start()
		}
	}
	if cfg.PersistDir != "" {
		j, records, err := openJournal(cfg.PersistDir, cfg.PersistMaxWAL,
			s.persistSnapshot, o.Metrics(), cfg.Logger)
		if err != nil {
			if s.prober != nil {
				s.prober.Stop()
			}
			return nil, err
		}
		// Replay before the journal is wired into store(), so replayed
		// entries are not re-journaled. Decisions replay oldest first: if
		// the cache is smaller than the journal, the newest survive.
		// Session snapshots (ids prefixed "sess") restore last-write-wins
		// — each re-scale journals a full snapshot under the same id.
		sessRecs := map[string]persistRecord{}
		var sessOrder []string
		for _, rec := range records {
			if strings.HasPrefix(rec.id, sessionIDPrefix) {
				if _, ok := sessRecs[rec.id]; !ok {
					sessOrder = append(sessOrder, rec.id)
				}
				sessRecs[rec.id] = rec
				continue
			}
			s.store(rec.id, rec.body, nil)
		}
		for _, id := range sessOrder {
			s.restoreSession(sessRecs[id])
		}
		s.journal = j
	}
	s.mux = s.buildMux()
	s.handler = s.mux
	if !cfg.DisableTelemetry {
		s.handler = s.telemetry(s.mux)
	}
	return s, nil
}

// Handler returns the HTTP handler serving the v1 API, wrapped in the
// request-id / access-log / panic-recovery middleware unless
// Config.DisableTelemetry.
func (s *Server) Handler() http.Handler { return s.handler }

// Close releases the server's background machinery: the health prober
// stops, and the decision journal drains its queue and compacts a final
// snapshot. Call after the HTTP server has shut down.
func (s *Server) Close() error {
	if s.prober != nil {
		s.prober.Stop()
	}
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// onPeerChange is the prober's verdict callback: fold the liveness
// transition into the membership view (rebuilding the effective ring
// and advancing the epoch) and force the peer's breaker to match, so a
// probe-detected death stops proxy attempts within one interval even on
// nodes that never dialed the peer.
func (s *Server) onPeerChange(peer string, up bool) {
	if s.view.SetAlive(peer, up) {
		s.epochGauge.Set(float64(s.view.Epoch()))
		if s.logger != nil {
			s.logger.Warn("cluster membership changed",
				"peer", peer, "up", up, "epoch", s.view.Epoch(),
				"live", strings.Join(s.view.Live(), ","))
		}
	}
	if br := s.breakerFor(peer); br != nil {
		if up {
			br.ForceClose()
		} else {
			br.ForceOpen()
		}
	}
}

// routeFor labels a locally answered response with this node's replica
// slot for the fingerprint ("primary", "replica-<i>", or "fallback" for
// a node outside the replica set serving a body it computed during an
// earlier fallback), so load generators can count failover traffic.
func (s *Server) routeFor(id string) string {
	for i, o := range s.view.Ring().OwnerN(id, s.replication) {
		if o == s.self {
			return routeLabel(i)
		}
	}
	return "fallback"
}

// persistSnapshot captures the decision cache for journal compaction,
// oldest first so replay rebuilds the same LRU order, followed by one
// snapshot per open session.
func (s *Server) persistSnapshot() []persistRecord {
	s.cmu.Lock()
	recs := make([]persistRecord, 0, s.lru.Len())
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		recs = append(recs, persistRecord{id: e.id, body: e.body})
	}
	s.cmu.Unlock()
	return append(recs, s.sessionSnapshots()...)
}

// Workers returns the resolved worker-pool capacity.
func (s *Server) Workers() int { return s.admit.workers }

// p99Search returns the observed p99 search duration in seconds (0
// before the first completed search), the pace the admission controller
// uses to estimate queue drain time.
func (s *Server) p99Search() float64 {
	if s.searchSeconds.Count() == 0 {
		return 0
	}
	return s.searchSeconds.Quantile(0.99)
}

// framework returns the base Framework for a system preset, inspecting
// it on first use. The base is never used to run searches directly —
// callers clone it so concurrent requests cannot alias one hardware
// model (the parallel-runner audit contract).
func (s *Server) framework(name string) (*core.Framework, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fw, ok := s.bases[name]; ok {
		return fw, nil
	}
	sys := hw.ByName(name)
	if sys == nil {
		return nil, &notFoundError{what: "system", name: name}
	}
	fw := core.NewFramework(sys)
	s.bases[name] = fw
	return fw, nil
}

// evalCache returns the shared per-(system, benchmark) eval cache.
// EvalCache binds to one (system, workload) pair, so the key must pin
// both; sharing across requests is what makes repeat traffic for the
// same pair cheap even on a decision-cache miss (different TOQ, say).
func (s *Server) evalCache(sys, bench string) *prog.EvalCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := sys + "\x00" + bench
	c, ok := s.caches[key]
	if !ok {
		c = prog.NewEvalCache()
		s.caches[key] = c
	}
	return c
}

// notFoundError marks an unknown benchmark or system preset.
type notFoundError struct{ what, name string }

func (e *notFoundError) Error() string { return fmt.Sprintf("unknown %s %q", e.what, e.name) }

// scaleJob is a validated POST /v1/scale request, ready to fingerprint
// and run.
type scaleJob struct {
	fw    *core.Framework
	w     *prog.Workload
	opts  scaler.Options
	spec  *fault.Spec
	id    string
	cache *prog.EvalCache
}

// prepare validates a wire request against the registries and option
// rules and computes the decision fingerprint.
func (s *Server) prepare(req *api.ScaleRequest) (*scaleJob, error) {
	w := s.workload(req.Benchmark)
	if w == nil {
		return nil, &notFoundError{what: "benchmark", name: req.Benchmark}
	}
	sysName := req.System
	if sysName == "" {
		sysName = "system1"
	}
	fw, err := s.framework(sysName)
	if err != nil {
		return nil, err
	}
	spec, err := fault.ParseSeeded(req.Faults, req.FaultSeed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", scaler.ErrBadOptions, err)
	}
	set := prog.InputDefault
	if req.InputSet != "" {
		if set, err = prog.ParseInputSet(req.InputSet); err != nil {
			return nil, fmt.Errorf("%w: %v", scaler.ErrBadOptions, err)
		}
	}
	retries := scaler.DefaultOptions().Retries
	if req.Retries != nil {
		retries = *req.Retries
	}
	opts, err := scaler.Options{
		TOQ:      req.TOQ,
		InputSet: set,
		Retries:  retries,
		// The shared cache is attached after fingerprinting; under fault
		// injection it stays off (replayed op results would mask the
		// injected faults the request asked for).
		DisableEvalCache: true,
	}.Normalize()
	if err != nil {
		return nil, err
	}
	job := &scaleJob{fw: fw, w: w, opts: opts, spec: spec}
	if spec == nil {
		job.cache = s.evalCache(sysName, w.Name)
	}
	job.id, err = s.fingerprint(fw, w, opts, spec)
	if err != nil {
		return nil, err
	}
	return job, nil
}

// fingerprint hashes everything that determines the decision: the
// inspector database (timing curves drive every plan choice), the
// system and workload identity, and the decision-affecting options.
// Workers and the eval cache are deliberately excluded — the search
// outcome and all artifacts are byte-identical for any value of either
// (the determinism invariant) — as are Retries when no faults are
// injected, since retry logic never fires on a clean runtime.
func (s *Server) fingerprint(fw *core.Framework, w *prog.Workload, opts scaler.Options, spec *fault.Spec) (string, error) {
	db, err := json.Marshal(fw.DB())
	if err != nil {
		return "", fmt.Errorf("service: fingerprint: %w", err)
	}
	h := fnv.New64a()
	h.Write(db)
	fmt.Fprintf(h, "|sys=%s|w=%s|toq=%x|set=%s", fw.System().Name, w.Name, opts.TOQ, opts.InputSet)
	if spec != nil {
		fmt.Fprintf(h, "|faults=%s|retries=%d", spec.String(), opts.Retries)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// cached returns the response body for a fingerprint, refreshing its
// LRU position.
func (s *Server) cached(id string) ([]byte, bool) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).body, true
}

// store inserts a decision body and its wall trace, evicting the least
// recently used entry beyond capacity. Evicted decisions take their SSE
// stream with them — the history's lifetime matches the decision's.
func (s *Server) store(id string, body, trace []byte) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if el, ok := s.byID[id]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.byID[id] = s.lru.PushFront(&entry{id: id, body: body, trace: trace})
	if s.journal != nil {
		s.journal.append(id, body)
	}
	for s.lru.Len() > s.maxSize {
		el := s.lru.Back()
		s.lru.Remove(el)
		evicted := el.Value.(*entry).id
		delete(s.byID, evicted)
		s.hub.drop(evicted)
		s.obs.Metrics().Counter("service_cache_evictions").Inc()
	}
}

// traceFor returns the wall trace recorded for a cached decision.
func (s *Server) traceFor(id string) ([]byte, bool) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.trace == nil {
		return nil, false
	}
	return e.trace, true
}

// handleScale is POST /v1/scale: fingerprint, serve from cache, proxy
// to the fingerprint's owner node, coalesce onto an identical in-flight
// search, or become the leader that runs the one search under admission
// control. Whichever path answers, the body is the same bytes — a pure
// function of the fingerprint.
func (s *Server) handleScale(w http.ResponseWriter, r *http.Request) {
	m := s.obs.Metrics()
	m.Counter("service_requests", obs.L("endpoint", "scale")).Inc()
	req, err := api.DecodeScaleRequest(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	job, err := s.prepare(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if isFingerprintOnly(r) {
		s.fingerprintResponse(w, job.id)
		return
	}
	if body, ok := s.cached(job.id); ok {
		s.cmu.Lock()
		s.hits++
		s.cmu.Unlock()
		if s.view != nil && r.Header.Get(headerForwarded) == "" {
			w.Header().Set(headerClusterRoute, s.routeFor(job.id))
		}
		m.Counter("service_cache", obs.L("result", "hit")).Inc()
		s.writeDecision(w, r, job.id, "hit", body)
		return
	}

	// Ring ownership: requests route to the fingerprint's replica set on
	// the *live* ring (the membership view with probe-down peers
	// excluded), primary first, so the fleet's decision cache shards
	// instead of duplicating and searches concentrate on one node. The
	// first live owner computes; other replicas and non-owners proxy to
	// it, failing over through the replica list — warmed at compute time
	// — when it dies between probe verdicts. A request that was already
	// forwarded once is always answered locally (no proxy loops), as is
	// any request when every replica is unreachable ("fallback") — local
	// compute produces the byte-identical body.
	if s.view != nil && r.Header.Get(headerForwarded) == "" {
		owners := s.view.Ring().OwnerN(job.id, s.replication)
		selfSlot := -1
		for i, o := range owners {
			if o == s.self {
				selfSlot = i
				break
			}
		}
		switch {
		case selfSlot == 0:
			w.Header().Set(headerClusterRoute, routeLabel(0))
		case selfSlot > 0:
			// A replica answers its own cache (checked above) but routes
			// misses to the owners ahead of it; it computes only when all
			// of them are unreachable.
			if s.proxyScale(w, r, req, job.id, owners[:selfSlot]) {
				return
			}
			w.Header().Set(headerClusterRoute, routeLabel(selfSlot))
		default:
			if s.proxyScale(w, r, req, job.id, owners) {
				return
			}
			w.Header().Set(headerClusterRoute, "fallback")
		}
	}

	ctx := r.Context()
	f, ref, leader := s.flightFor(job.id, ctx)
	defer ref.leave()
	if !leader {
		// Single-flight coalescing: an identical search is already
		// running; subscribe to its result instead of taking a slot.
		m.Counter("service_cache", obs.L("result", "coalesced")).Inc()
		s.awaitFlight(w, r, f)
		return
	}
	m.Counter("service_cache", obs.L("result", "miss")).Inc()
	// Abandon guard: if this handler unwinds without publishing an
	// outcome (a panic outside fault.Guard), terminate the flight so
	// coalesced subscribers get an error instead of hanging. Normal
	// completion wins — flightDone is first-outcome-takes-all.
	defer s.flightDone(f, nil, nil, errFlightAbandoned)

	var rt *reqTelemetry // nil-safe throughout when telemetry is off
	if !s.telemetryOff {
		rt = s.newReqTelemetry(RequestIDFrom(ctx), job)
	}

	// Admission control. A request that cannot meet its declared
	// deadline — or that finds the queue full — is shed before it costs
	// anything; a client that disconnects while queued never occupies a
	// slot. The search itself runs under the flight's context, which
	// outlives this request as long as coalesced subscribers remain.
	if se := s.admit.deadlineShed(deadlineMs(r), s.p99Search); se != nil {
		s.shed(w, m, f, rt, se)
		return
	}
	qWall := rt.now()
	qStart := time.Now()
	if err := s.admit.Acquire(f.ctx, clientID(r), s.p99Search); err != nil {
		var se *shedError
		if errors.As(err, &se) {
			s.shed(w, m, f, rt, se)
			return
		}
		rt.fail(err)
		s.flightDone(f, nil, nil, err)
		s.writeError(w, err)
		return
	}
	defer s.admit.Release()
	s.queueWait.Observe(time.Since(qStart).Seconds())
	rt.queueWaited(qWall)
	if s.testSearchStarted != nil {
		s.testSearchStarted(f.ctx, job.w.Name)
	}

	searchStart := time.Now()
	body, err := s.runSearch(f.ctx, job, rt)
	s.searchSeconds.Observe(time.Since(searchStart).Seconds())
	if err != nil {
		m.Counter("service_searches", obs.L("result", resultLabel(err))).Inc()
		rt.fail(err)
		s.flightDone(f, nil, nil, err)
		s.writeError(w, err)
		return
	}
	m.Counter("service_searches", obs.L("result", "ok")).Inc()
	s.cmu.Lock()
	s.misses++
	s.cmu.Unlock()
	s.flightDone(f, body, rt.closeTrace(), nil)
	rt.done(job.id)
	if s.view != nil && s.replication > 1 {
		// Push the fresh decision to the fingerprint's other replicas so
		// a failover request finds it cached instead of re-searching.
		// Asynchronous and best-effort; the client never waits on it.
		go s.warmReplicas(job.id, body)
	}
	s.writeDecision(w, r, job.id, "miss", body)
}

// shed rejects a leader request (and with it the whole flight: queued
// coalesced subscribers receive the same 429, having cost nothing).
func (s *Server) shed(w http.ResponseWriter, m *obs.Registry, f *flight, rt *reqTelemetry, se *shedError) {
	m.Counter("service_shed", obs.L("reason", se.reason)).Inc()
	rt.fail(se)
	s.flightDone(f, nil, nil, se)
	s.writeError(w, se)
}

// awaitFlight blocks a coalesced subscriber until the flight's leader
// publishes the result (fanned out verbatim) or the subscriber's own
// client disconnects.
func (s *Server) awaitFlight(w http.ResponseWriter, r *http.Request, f *flight) {
	select {
	case <-f.done:
		if f.err != nil {
			s.writeError(w, f.err)
			return
		}
		s.writeDecision(w, r, f.id, "coalesced", f.body)
	case <-r.Context().Done():
		s.writeError(w, ctxCause(r.Context()))
	}
}

// clientID keys the fair queue: an explicit X-Client-Id when the
// client sent a sane one, else the remote host, so unidentified
// traffic from one address shares one bucket.
func clientID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get(headerClientID)); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// deadlineMs reads the client's declared latency budget (X-Deadline-Ms);
// 0 means none. Negative or malformed values are ignored rather than
// rejected — the header is advisory.
func deadlineMs(r *http.Request) int {
	v := r.Header.Get(headerDeadline)
	if v == "" {
		return 0
	}
	ms, err := strconv.Atoi(v)
	if err != nil || ms < 0 {
		return 0
	}
	return ms
}

// runSearch executes the decision search for a prepared job on a clone
// of the base framework and renders the canonical decision body. The
// body is a pure function of the search result — no ids, timestamps,
// or cache state — which keeps it byte-identical to cmd/prescaler
// -json for the same workload and options.
func (s *Server) runSearch(ctx context.Context, job *scaleJob, rt *reqTelemetry) ([]byte, error) {
	_, body, err := s.runScaled(ctx, job, rt, nil)
	return body, err
}

// runScaled is runSearch plus the scaled program itself, which the
// session layer needs to execute batches under the chosen config. A
// non-nil seed warm-starts the search from a previous generation; the
// cold path (nil seed) is bit-for-bit the pre-session search.
func (s *Server) runScaled(ctx context.Context, job *scaleJob, rt *reqTelemetry, seed *scaler.Seed) (*core.ScaledProgram, []byte, error) {
	fw := job.fw.Clone()
	sys := fw.System()
	sys.Faults = job.spec
	opts := job.opts
	opts.EvalCache = job.cache
	opts.Seed = seed
	var reqObs *obs.Observer
	if rt != nil {
		// The per-request journal and virtual tracer share the
		// process-wide metrics registry: /metrics aggregates across
		// requests while the explain journal stays request-scoped. The
		// request id lands in the journal, so an explain report, an
		// access-log line, and a client's X-Request-Id all join up.
		j := &obs.Journal{}
		if rt.id != "" {
			j.Note("request %s", rt.id)
		}
		reqObs = obs.Compose(obs.NewTracer(), s.obs.Metrics(), j)
		opts.Obs = reqObs
		opts.Progress = rt.onProgress
		rt.beginSearch()
	}
	var sp *core.ScaledProgram
	err := fault.Guard(func() error {
		var e error
		sp, e = fw.Scale(ctx, job.w, opts)
		return e
	})
	if err != nil {
		return nil, nil, err
	}
	if s.logger != nil && reqObs != nil && s.logger.Enabled(ctx, slog.LevelDebug) {
		s.logger.Debug("decision explain", "request_id", rt.id, "explain", reqObs.Explain())
	}
	d := api.NewDecision(sys, job.w, sp.Search, opts.TOQ, opts.InputSet)
	var buf strings.Builder
	if err := api.EncodeDecision(&buf, d); err != nil {
		return nil, nil, err
	}
	return sp, []byte(buf.String()), nil
}

// handleDecision is GET /v1/decisions/{id}.
func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	s.obs.Metrics().Counter("service_requests", obs.L("endpoint", "decisions")).Inc()
	id := r.PathValue("id")
	body, ok := s.cached(id)
	if !ok {
		s.writeError(w, &notFoundError{what: "decision", name: id})
		return
	}
	s.writeDecision(w, r, id, "hit", body)
}

// handleSystems is GET /v1/systems: every preset with its inspector
// database inventory (inspecting lazily, so the first call pays the
// one-time inspection cost for presets not yet used by a search).
func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	s.obs.Metrics().Counter("service_requests", obs.L("endpoint", "systems")).Inc()
	var names []string
	for _, sys := range hw.Systems() {
		names = append(names, sys.Name)
	}
	sort.Strings(names)
	out := make([]*api.System, 0, len(names))
	for _, name := range names {
		fw, err := s.framework(name)
		if err != nil {
			s.writeError(w, err)
			return
		}
		out = append(out, api.NewSystem(fw.System(), fw.DB().NumCurves(), fw.DB().Sizes()))
	}
	w.Header().Set("Content-Type", "application/json")
	api.Encode(w, out)
}

// handleHealthz is GET /v1/healthz: liveness plus pool and cache
// occupancy and the request-latency/queue-wait quantiles, cheap enough
// for tight probe loops.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	api.Encode(w, s.Health())
}

// Health returns the healthz document: liveness, pool and cache
// occupancy, uptime, and p50/p99/max summaries of request latency and
// queue wait. cmd/prescalerd writes the same document as a JSON
// artifact when it drains on SIGTERM, so a scrape and the shutdown
// artifact are directly comparable.
func (s *Server) Health() map[string]any {
	s.cmu.Lock()
	cached := s.lru.Len()
	hits, misses := s.hits, s.misses
	s.cmu.Unlock()
	// Per-(system, benchmark) eval-cache entry counts, keyed
	// "system/benchmark", so load tests can verify cache behavior
	// without scraping Prometheus.
	evalCaches := map[string]int{}
	s.mu.Lock()
	for key, c := range s.caches {
		evalCaches[strings.ReplaceAll(key, "\x00", "/")] = c.Entries()
	}
	s.mu.Unlock()
	h := map[string]any{
		"schema":             api.Schema,
		"status":             "ok",
		"workers":            s.admit.workers,
		"busy":               s.admit.Busy(),
		"queue_depth":        s.admit.Depth(),
		"queue_capacity":     s.admit.maxQ,
		"decisions":          cached,
		"decisions_capacity": s.maxSize,
		"cache_hits":         hits,
		"cache_miss":         misses,
		"eval_caches":        evalCaches,
		"uptime_seconds":     time.Since(s.start).Seconds(),
		"request_latency":    latencySummary(s.latency),
		"queue_wait":         latencySummary(s.queueWait),
		"search_time":        latencySummary(s.searchSeconds),
	}
	if s.view != nil {
		peers := map[string]any{}
		for peer, br := range s.breakers {
			up := true
			if s.prober != nil {
				up = s.prober.Up(peer)
			}
			peers[peer] = map[string]any{"up": up, "breaker": br.State().String()}
		}
		h["cluster"] = map[string]any{
			"self":        s.self,
			"nodes":       s.view.Seed(),
			"live":        s.view.Live(),
			"epoch":       s.view.Epoch(),
			"replication": s.replication,
			"peers":       peers,
		}
	}
	if s.journal != nil {
		h["persist_dir"] = s.journal.dir
	}
	return h
}

// handleMetricsz is GET /v1/metricsz: the obs registry as CSV — the
// same rendering cmd/prescaler -metrics writes, so existing tooling
// parses both.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	if err := s.obs.Metrics().WriteCSV(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeDecision serves a canonical decision body. The id and cache
// status travel as headers, never in the body, which must stay a pure
// function of the search result. Behind ?meta=1 the same metadata is
// additionally promoted into an api.Envelope wrapper for clients that
// cannot read headers; the headers stay set either way, and the bare
// body (no meta) remains the byte-stable surface.
func (s *Server) writeDecision(w http.ResponseWriter, r *http.Request, id, cache string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Decision-Id", id)
	h.Set("X-Cache", cache)
	if wantMeta(r) {
		api.Encode(w, &api.Envelope{
			Schema: api.Schema,
			Meta: &api.Meta{
				DecisionID:   id,
				Cache:        cache,
				ClusterRoute: h.Get(headerClusterRoute),
				CacheOrigin:  h.Get(headerCacheOrigin),
			},
			Decision: json.RawMessage(body),
		})
		return
	}
	w.Write(body)
}

// wantMeta reports whether the request asked for the ?meta=1 envelope.
func wantMeta(r *http.Request) bool {
	if r == nil {
		return false
	}
	v := r.URL.Query().Get("meta")
	return v == "1" || v == "true"
}

// ctxCause extracts the most specific cancellation error.
func ctxCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// resultLabel classifies a search failure for the metrics counter.
func resultLabel(err error) string {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case ocl.IsFault(err):
		return "fault"
	default:
		return "error"
	}
}

// statusClientClosedRequest is nginx's nonstandard 499: the client went
// away before the response was ready. Nothing receives the body, but
// the code keeps access logs and tests honest about why the search
// ended.
const statusClientClosedRequest = 499

// writeError maps an error onto the deterministic (status, code) pair
// of the v1 error envelope, classifying through the exported sentinels
// (scaler.ErrBadOptions, ocl.ErrDeviceLost, ...) however deeply the
// error is wrapped.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	retryAfter := 0
	var nf *notFoundError
	var pe *fault.PanicError
	var se *shedError
	switch {
	case errors.As(err, &se):
		status, code = http.StatusTooManyRequests, "overloaded"
		retryAfter = se.retryAfter
	case errors.As(err, &nf):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, scaler.ErrBadOptions), errors.Is(err, api.ErrBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status, code = statusClientClosedRequest, "canceled"
	case errors.Is(err, scaler.ErrUnsupported):
		status, code = http.StatusUnprocessableEntity, "unsupported"
	case errors.Is(err, ocl.ErrDeviceLost):
		status, code = http.StatusBadGateway, "device_lost"
	case errors.Is(err, ocl.ErrAllocFailed):
		status, code = http.StatusBadGateway, "alloc_failed"
	case errors.Is(err, ocl.ErrLaunchFailed):
		status, code = http.StatusBadGateway, "launch_failed"
	case errors.Is(err, ocl.ErrTransferFailed):
		status, code = http.StatusBadGateway, "transfer_failed"
	case errors.As(err, &pe):
		status, code = http.StatusInternalServerError, "panic"
	}
	s.obs.Metrics().Counter("service_errors", obs.L("code", code)).Inc()
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.WriteHeader(status)
	api.Encode(w, &api.Error{
		Schema: api.Schema, Code: code, Message: err.Error(),
		RetryAfterSeconds: retryAfter,
	})
}
