package service

import (
	"sync"
)

// sseEvent is one rendered server-sent event: the SSE event name plus
// its JSON data payload. Events are serialized once at publish time and
// replayed verbatim to every (current and future) subscriber.
type sseEvent struct {
	name string // SSE `event:` field — "start", "trial", "done", ...
	data []byte // SSE `data:` field — one JSON object, no newlines
}

// terminal reports whether this event ends the stream.
func (e sseEvent) terminal() bool { return e.name == "done" || e.name == "error" }

// maxStreamHistory bounds the replay buffer per decision. A search
// emits tens of events; the cap only guards against pathological
// workloads. The terminal event is always appended so late subscribers
// still see the stream close.
const maxStreamHistory = 1024

// maxStreams bounds the hub. Streams for cached decisions are evicted
// with their LRU entry; the cap only guards against a flood of
// subscribe-before-start streams for ids that never run.
const maxStreams = 4096

// eventHub fans decision progress events out to SSE subscribers. Each
// decision id owns one stream holding the full event history (bounded)
// so a subscriber attaching mid-search — or after the decision
// completed — replays everything before going live. Subscribing to an
// id the hub has never seen creates a pending stream: the natural flow
// is "compute the fingerprint, subscribe, then POST", and the subscriber
// must not lose the race against the search's first event.
type eventHub struct {
	mu      sync.Mutex
	streams map[string]*stream
}

// stream is the event history and live subscriber set of one decision.
type stream struct {
	mu      sync.Mutex
	history []sseEvent
	dropped int  // events beyond maxStreamHistory
	done    bool // terminal event published
	subs    map[chan sseEvent]struct{}
}

func newEventHub() *eventHub {
	return &eventHub{streams: map[string]*stream{}}
}

// get returns the stream for id, creating it when create is set (and
// the hub has room).
func (h *eventHub) get(id string, create bool) *stream {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[id]
	if !ok && create && len(h.streams) < maxStreams {
		st = &stream{subs: map[chan sseEvent]struct{}{}}
		h.streams[id] = st
	}
	return st
}

// start returns the stream a fresh search should publish into. An
// existing open stream is reused (subscribe-before-POST created it, or
// a concurrent search for the same fingerprint got here first — events
// then interleave until the first terminal, which is harmless). A
// stream that already closed — a retried search after an error — is
// replaced so the retry's events are not swallowed by the done guard.
// Returns nil when the hub is at capacity; the search then runs with
// no stream at all.
func (h *eventHub) start(id string) *stream {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.streams[id]; ok {
		st.mu.Lock()
		done := st.done
		st.mu.Unlock()
		if !done {
			return st
		}
	} else if len(h.streams) >= maxStreams {
		return nil
	}
	st := &stream{subs: map[chan sseEvent]struct{}{}}
	h.streams[id] = st
	return st
}

// drop removes a stream (LRU eviction of its decision, or a failed
// search whose terminal error has been delivered).
func (h *eventHub) drop(id string) {
	h.mu.Lock()
	delete(h.streams, id)
	h.mu.Unlock()
}

// publish appends an event to the history and fans it out to live
// subscribers. A subscriber whose buffer is full loses the event (its
// own drop counter increments); the history is authoritative, the live
// channel is best-effort. Publishing after the terminal event is a
// no-op, so two racing searches for the same fingerprint cannot
// resurrect a closed stream.
func (st *stream) publish(ev sseEvent) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return
	}
	if len(st.history) < maxStreamHistory || ev.terminal() {
		st.history = append(st.history, ev)
	} else {
		st.dropped++
	}
	if ev.terminal() {
		st.done = true
	}
	for ch := range st.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe returns a snapshot of the history, a live channel for
// subsequent events, and whether the stream is already closed (the
// snapshot then ends with the terminal event). Callers must
// unsubscribe.
func (st *stream) subscribe() (history []sseEvent, live chan sseEvent, done bool) {
	live = make(chan sseEvent, 64)
	st.mu.Lock()
	defer st.mu.Unlock()
	history = append([]sseEvent(nil), st.history...)
	if !st.done {
		st.subs[live] = struct{}{}
	}
	return history, live, st.done
}

// unsubscribe detaches a live channel.
func (st *stream) unsubscribe(ch chan sseEvent) {
	st.mu.Lock()
	delete(st.subs, ch)
	st.mu.Unlock()
}
