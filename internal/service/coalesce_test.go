package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// flightRefs returns the subscriber count of the single in-flight
// search (0 when none).
func flightRefs(s *Server) int {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	for _, f := range s.flights {
		f.mu.Lock()
		n := f.refs
		f.mu.Unlock()
		return n
	}
	return 0
}

// N concurrent identical requests must run exactly one search and fan
// its byte-identical body out: one X-Cache miss, N-1 coalesced, and the
// search-start hook fired once.
func TestCoalesceSingleSearch(t *testing.T) {
	const n = 16
	o := obs.New()
	srv, ts := newTestServer(t, Config{Workers: 2, Obs: o})
	var searches atomic.Int32
	hold := make(chan struct{})
	releaseHold := sync.OnceFunc(func() { close(hold) })
	// Release the parked leader even on a mid-test Fatal: the httptest
	// Close cleanup waits for outstanding requests and would deadlock.
	defer releaseHold()
	srv.testSearchStarted = func(ctx context.Context, bench string) {
		if searches.Add(1) == 1 {
			<-hold // park the leader until every request has subscribed
		}
	}

	type result struct {
		status int
		cache  string
		body   []byte
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/v1/scale",
				bytes.NewReader([]byte(`{"benchmark":"veccombine","toq":0.97}`)))
			if err != nil {
				results <- result{0, err.Error(), nil}
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results <- result{0, err.Error(), nil}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get("X-Cache"), body}
		}()
	}

	// Wait until all n requests joined the one flight, then let the
	// leader search.
	deadline := time.Now().Add(10 * time.Second)
	for flightRefs(srv) != n {
		if time.Now().After(deadline) {
			t.Fatalf("flight refs = %d, want %d", flightRefs(srv), n)
		}
		time.Sleep(time.Millisecond)
	}
	releaseHold()
	wg.Wait()
	close(results)

	counts := map[string]int{}
	var first []byte
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		counts[r.cache]++
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Error("coalesced body differs from the leader's")
		}
	}
	if counts["miss"] != 1 || counts["coalesced"] != n-1 {
		t.Errorf("cache states = %v, want 1 miss / %d coalesced", counts, n-1)
	}
	if got := searches.Load(); got != 1 {
		t.Errorf("searches started = %d, want exactly 1", got)
	}
	if v := o.Metrics().Counter("service_cache", obs.L("result", "coalesced")).Value(); v != n-1 {
		t.Errorf("coalesced counter = %v, want %d", v, n-1)
	}
	if v := o.Metrics().Counter("service_searches", obs.L("result", "ok")).Value(); v != 1 {
		t.Errorf("ok-search counter = %v, want 1", v)
	}

	// The flight is retired; a repeat is a plain cache hit.
	resp, body := postScale(t, ts, `{"benchmark":"veccombine","toq":0.97}`)
	if c := resp.Header.Get("X-Cache"); c != "hit" || !bytes.Equal(body, first) {
		t.Errorf("post-flight request: X-Cache %q, body equal %v", c, bytes.Equal(body, first))
	}
}

// When every subscriber of a flight disconnects, the search must be
// canceled at its next trial boundary — nobody is left to read it.
func TestCoalesceCancelWhenAllSubscribersLeave(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{Workers: 1, Obs: o})
	started := make(chan context.Context, 1)
	var once sync.Once
	srv.testSearchStarted = func(ctx context.Context, bench string) {
		once.Do(func() { started <- ctx })
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/scale",
		bytes.NewReader([]byte(`{"benchmark":"veccombine","toq":0.93}`)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	sctx := <-started
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response")
	}
	select {
	case <-sctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("flight context not canceled after the last subscriber left")
	}
}

// The decision LRU must stay consistent when many flights complete and
// evict concurrently (run under -race). Store/evict/lookup from many
// goroutines, including duplicate ids racing like coalesced
// completions do, then check the map and list agree and capacity holds.
func TestLRUStoreEvictRace(t *testing.T) {
	srv, err := New(Config{CacheSize: 8, Workload: testWorkloads})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				// Half the ids collide across goroutines: concurrent
				// store of the same id is the coalesced-completion race.
				id := fmt.Sprintf("%016x", i%50)
				if i%2 == 0 {
					id = fmt.Sprintf("%016x", g*1000+i)
				}
				srv.store(id, []byte(id), nil)
				srv.cached(id)
				srv.traceFor(id)
			}
		}(g)
	}
	wg.Wait()
	srv.cmu.Lock()
	defer srv.cmu.Unlock()
	if srv.lru.Len() != len(srv.byID) {
		t.Errorf("lru len %d != index len %d", srv.lru.Len(), len(srv.byID))
	}
	if srv.lru.Len() > 8 {
		t.Errorf("lru len %d exceeds capacity 8", srv.lru.Len())
	}
	for el := srv.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if srv.byID[e.id] != el {
			t.Errorf("index entry for %s does not point at its element", e.id)
		}
	}
}
