package service

import (
	"context"
	"fmt"
	"sync"
)

// flight is one in-flight search shared by every concurrent request
// that fingerprints to it. The first request for an uncached
// fingerprint becomes the flight's leader: it takes the admission path
// (fair queue, worker slot) and runs the one search. Every later
// request for the same fingerprint subscribes instead — no slot, no
// queue position — and fans the leader's body out when done closes.
// The fan-out is sound because the body is a pure function of the
// fingerprint (the determinism invariant): whoever computes it, the
// bytes are identical.
//
// The search runs under the flight's own context, not the leader's
// request context: the leader is merely the first subscriber, and its
// disconnect must not kill a search that other subscribers still want.
// Each subscriber holds one reference; when the last reference is
// dropped (every client disconnected) the flight context is canceled
// and the search aborts at its next trial boundary.
type flight struct {
	id       string
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{} // closed after body/err are set
	doneOnce sync.Once
	body     []byte
	err      error

	mu   sync.Mutex
	refs int
}

// flightRef is one subscriber's reference on a flight. leave is
// idempotent: it runs on handler exit and — via context.AfterFunc — on
// client disconnect, whichever comes first.
type flightRef struct {
	f    *flight
	once sync.Once
	stop func() bool // detaches the AfterFunc watcher
}

func (r *flightRef) leave() {
	r.once.Do(func() {
		r.f.mu.Lock()
		r.f.refs--
		last := r.f.refs == 0
		r.f.mu.Unlock()
		if last {
			r.f.cancel()
		}
	})
	if r.stop != nil {
		r.stop()
	}
}

// flightFor returns the flight for a fingerprint and whether the caller
// is its leader, registering the caller as a subscriber either way. The
// returned ref must be released with leave (the handler defers it; a
// client disconnect triggers it early through AfterFunc).
func (s *Server) flightFor(id string, rctx context.Context) (*flight, *flightRef, bool) {
	s.fmu.Lock()
	f, ok := s.flights[id]
	leader := !ok
	if !ok {
		ctx, cancel := context.WithCancel(context.Background())
		f = &flight{id: id, ctx: ctx, cancel: cancel, done: make(chan struct{})}
		s.flights[id] = f
	}
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
	s.fmu.Unlock()
	ref := &flightRef{f: f}
	ref.stop = context.AfterFunc(rctx, ref.leave)
	return f, ref, leader
}

// flightDone publishes the leader's result and retires the flight. On
// success the decision is stored in the LRU *before* the flight is
// removed from the index, so there is no window where a new request
// sees neither the cache entry nor the flight; subscribers are then
// released by closing done. Idempotent: the leader's deferred abandon
// guard calls it too, and the first outcome wins.
func (s *Server) flightDone(f *flight, body []byte, trace []byte, err error) {
	f.doneOnce.Do(func() {
		f.body, f.err = body, err
		if err == nil {
			s.store(f.id, body, trace)
		}
		s.fmu.Lock()
		delete(s.flights, f.id)
		s.fmu.Unlock()
		close(f.done)
		f.cancel()
	})
}

// errFlightAbandoned is the outcome subscribers see if the leader's
// handler unwound without publishing one (a panic past fault.Guard):
// the flight must still terminate or coalesced subscribers would hang.
var errFlightAbandoned = fmt.Errorf("coalesced search abandoned by its leader")
