package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// ridKey is the context key the request-id middleware stores under.
type ridKey struct{}

// RequestIDFrom returns the request id threaded through ctx by the
// service middleware ("" when the request did not pass through it). The
// id is what X-Request-Id echoes, what every structured log line
// carries, and what runSearch notes in the decision journal — the one
// string that joins a log line, a journal note, and a client report to
// the same request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// ridCounter disambiguates ids if the random source ever fails.
var ridCounter atomic.Uint64

// newRequestID returns a fresh 16-hex-char request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", ridCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied X-Request-Id if it is
// printable ASCII of sane length, so callers can stitch their own
// traces; anything else is replaced.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}

// statusWriter records the status code and byte count of a response,
// and forwards Flush so SSE streaming keeps working through the
// middleware stack.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// telemetry wraps the API mux with the service middleware stack,
// outermost first:
//
//  1. request-id: generate (or accept) an id, store it in the request
//     context, echo it as X-Request-Id;
//  2. panic recovery: log the stack under the request id and answer
//     with the deterministic 500 "panic" error envelope instead of
//     killing the connection (searches are already panic-isolated by
//     fault.Guard — this net catches everything else in the HTTP
//     layer);
//  3. access log + latency: one structured line per request via
//     log/slog, and a wall-clock observation into the
//     http_request_seconds histogram that feeds /metrics and the
//     healthz quantiles.
//
// None of it touches response bodies: decision bodies stay
// byte-identical with the middleware on or off (the telemetry
// on/off identity test pins this).
func (s *Server) telemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, id))

		defer func() {
			dur := time.Since(start)
			s.latency.Observe(dur.Seconds())
			if p := recover(); p != nil {
				if s.logger != nil {
					s.logger.Error("panic serving request",
						"request_id", id,
						"method", r.Method,
						"path", r.URL.Path,
						"panic", fmt.Sprint(p),
						"stack", string(debug.Stack()),
					)
				}
				s.obs.Metrics().Counter("service_panics").Inc()
				if !sw.wrote {
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					api.Encode(sw, &api.Error{
						Schema: api.Schema, Code: "panic",
						Message: fmt.Sprintf("internal panic serving %s %s", r.Method, r.URL.Path),
					})
				}
			}
			if s.logger != nil {
				attrs := []any{
					"request_id", id,
					"method", r.Method,
					"path", r.URL.Path,
					"status", sw.status,
					"bytes", sw.bytes,
					"dur_ms", float64(dur.Microseconds()) / 1e3,
					"remote", r.RemoteAddr,
				}
				if did := sw.Header().Get("X-Decision-Id"); did != "" {
					attrs = append(attrs, "decision_id", did)
				}
				if c := sw.Header().Get("X-Cache"); c != "" {
					attrs = append(attrs, "cache", c)
				}
				s.logger.Log(r.Context(), levelFor(sw.status), "request", attrs...)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// levelFor maps a response status onto a log level: 5xx are errors,
// 4xx warnings, everything else info.
func levelFor(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}
