package service

// Route table: the single registry of the v1 surface. Every route is
// registered twice — once under its method pattern, and once (per
// path pattern) under a method-less fallback that answers any other
// verb with a 405 error envelope and an Allow header. A catch-all
// turns unknown paths into the same 404 envelope the handlers use, so
// every byte the service emits — success or failure — is
// schema-tagged JSON.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/api"
	"repro/internal/obs"
)

// route is one (method, pattern) registration.
type route struct {
	method  string
	pattern string
	h       http.HandlerFunc
}

// routes enumerates the v1 surface.
func (s *Server) routes() []route {
	return []route{
		{http.MethodPost, "/v1/scale", s.handleScale},
		{http.MethodGet, "/v1/decisions/{id}", s.handleDecision},
		{http.MethodPost, "/v1/decisions/{id}/warm", s.handleWarm},
		{http.MethodGet, "/v1/decisions/{id}/trace", s.handleTrace},
		{http.MethodGet, "/v1/decisions/{id}/events", s.handleEvents},
		{http.MethodPost, "/v1/sessions", s.handleSessionCreate},
		{http.MethodGet, "/v1/sessions/{id}", s.handleSessionGet},
		{http.MethodDelete, "/v1/sessions/{id}", s.handleSessionDelete},
		{http.MethodPost, "/v1/sessions/{id}/evaluate", s.handleSessionEvaluate},
		{http.MethodGet, "/v1/sessions/{id}/events", s.handleSessionEvents},
		{http.MethodGet, "/v1/systems", s.handleSystems},
		{http.MethodGet, "/v1/healthz", s.handleHealthz},
		{http.MethodGet, "/v1/metricsz", s.handleMetricsz},
		{http.MethodGet, "/metrics", s.handleMetrics},
	}
}

// buildMux materializes the route table.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	allowed := map[string][]string{}
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.method+" "+rt.pattern, rt.h)
		allowed[rt.pattern] = append(allowed[rt.pattern], rt.method)
	}
	for pattern, methods := range allowed {
		allow := allowHeader(methods)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.writeMethodNotAllowed(w, r, allow)
		})
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeRouteNotFound(w, r)
	})
	return mux
}

// allowHeader renders an Allow header value: the registered methods
// (plus the implicit HEAD next to GET), sorted.
func allowHeader(methods []string) string {
	set := map[string]bool{}
	for _, m := range methods {
		set[m] = true
		if m == http.MethodGet {
			set[http.MethodHead] = true
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// writeMethodNotAllowed answers a known path hit with the wrong verb:
// 405, the v1 error envelope, and the Allow header.
func (s *Server) writeMethodNotAllowed(w http.ResponseWriter, r *http.Request, allow string) {
	s.obs.Metrics().Counter("service_errors", obs.L("code", "method_not_allowed")).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Allow", allow)
	w.WriteHeader(http.StatusMethodNotAllowed)
	api.Encode(w, &api.Error{
		Schema: api.Schema,
		Code:   "method_not_allowed",
		Message: fmt.Sprintf("method %s not allowed for %s (allow: %s)",
			r.Method, r.URL.Path, allow),
	})
}

// writeRouteNotFound answers a path outside the v1 surface with the
// same 404 envelope unknown resources get.
func (s *Server) writeRouteNotFound(w http.ResponseWriter, r *http.Request) {
	s.writeError(w, &notFoundError{what: "route", name: r.URL.Path})
}
