package service

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Prober tuning. The fall threshold is deliberately low — a dead peer
// should leave the effective ring within roughly one probe interval
// (the chaos-test acceptance bar) — while the rise threshold demands
// two consecutive healthy answers so a flapping peer doesn't churn the
// ring epoch on every blip.
const (
	defaultProbeInterval = 2 * time.Second
	defaultProbeRise     = 2
	defaultProbeFall     = 2
)

// prober actively health-checks the cluster peers: one goroutine per
// peer issues GET /v1/healthz on a jittered interval (so a fleet's
// probes don't synchronize into bursts) and turns consecutive
// outcomes into up/down verdicts via rise/fall thresholds. Verdict
// transitions are reported through onChange — the server feeds them
// into the membership View (ring epoch) and the peer's circuit breaker
// — and are mirrored into the service_peer_up{peer} gauge.
//
// Peers start optimistically up: the breaker and the proxy fallback
// already make a dead peer cheap, and starting down would make a
// freshly booted fleet route everything locally until the first probe
// round.
type prober struct {
	peers    []string
	interval time.Duration
	rise     int
	fall     int
	probe    func(ctx context.Context, peer string) error
	onChange func(peer string, up bool)
	logger   *slog.Logger

	okCount   *obs.Counter
	failCount *obs.Counter
	upGauges  map[string]*obs.Gauge

	mu    sync.Mutex
	up    map[string]bool
	runs  map[string]int  // consecutive same-outcome probe count
	state map[string]bool // last single-probe outcome

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// newProber builds (but does not start) a prober. probe nil selects the
// default HTTP /v1/healthz check with a timeout of half the interval.
func newProber(peers []string, interval time.Duration, probe func(context.Context, string) error,
	onChange func(string, bool), m *obs.Registry, logger *slog.Logger) *prober {
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	p := &prober{
		peers:     peers,
		interval:  interval,
		rise:      defaultProbeRise,
		fall:      defaultProbeFall,
		probe:     probe,
		onChange:  onChange,
		logger:    logger,
		okCount:   m.Counter("service_probe", obs.L("result", "ok")),
		failCount: m.Counter("service_probe", obs.L("result", "fail")),
		upGauges:  map[string]*obs.Gauge{},
		up:        map[string]bool{},
		runs:      map[string]int{},
		state:     map[string]bool{},
	}
	if p.probe == nil {
		client := &http.Client{Timeout: max(interval/2, 250*time.Millisecond)}
		p.probe = func(ctx context.Context, peer string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/v1/healthz", nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return &httpStatusError{status: resp.StatusCode}
			}
			return nil
		}
	}
	for _, peer := range peers {
		p.up[peer] = true
		g := m.Gauge("service_peer_up", obs.L("peer", peer))
		g.Set(1)
		p.upGauges[peer] = g
	}
	return p
}

// httpStatusError is a non-2xx healthz answer.
type httpStatusError struct{ status int }

func (e *httpStatusError) Error() string {
	return "healthz status " + http.StatusText(e.status)
}

// Start launches the probe loops. Stop cancels and joins them.
func (p *prober) Start() {
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for _, peer := range p.peers {
		p.wg.Add(1)
		go p.loop(peer)
	}
}

// Stop halts all probe loops and waits for them to exit.
func (p *prober) Stop() {
	if p.cancel != nil {
		p.cancel()
		p.wg.Wait()
	}
}

// Up reports the current verdict for a peer (unknown peers are down).
func (p *prober) Up(peer string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up[peer]
}

// loop probes one peer until the prober stops. Each sleep is jittered
// within [0.75, 1.25] of the interval.
func (p *prober) loop(peer string) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(int64(fnvHash(peer))))
	for {
		sleep := time.Duration((0.75 + 0.5*rng.Float64()) * float64(p.interval))
		select {
		case <-p.ctx.Done():
			return
		case <-time.After(sleep):
		}
		err := p.probe(p.ctx, peer)
		if p.ctx.Err() != nil {
			return
		}
		p.observe(peer, err == nil)
	}
}

// observe folds one probe outcome into the rise/fall state machine and
// fires onChange on verdict transitions.
func (p *prober) observe(peer string, ok bool) {
	if ok {
		p.okCount.Inc()
	} else {
		p.failCount.Inc()
	}
	p.mu.Lock()
	if p.runs[peer] == 0 || p.state[peer] != ok {
		p.state[peer] = ok
		p.runs[peer] = 1
	} else {
		p.runs[peer]++
	}
	var flipped, up bool
	switch {
	case ok && !p.up[peer] && p.runs[peer] >= p.rise:
		p.up[peer], flipped, up = true, true, true
	case !ok && p.up[peer] && p.runs[peer] >= p.fall:
		p.up[peer], flipped, up = false, true, false
	}
	if flipped {
		p.upGauges[peer].Set(boolGauge(up))
	}
	p.mu.Unlock()
	if flipped {
		if p.logger != nil {
			p.logger.Warn("peer liveness changed", "peer", peer, "up", up)
		}
		if p.onChange != nil {
			p.onChange(peer, up)
		}
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// fnvHash is a tiny inline FNV-64a for per-peer jitter seeding.
func fnvHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
