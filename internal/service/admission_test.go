package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// tryPost issues a scale request without t.Fatal, safe for goroutines.
func tryPost(url, body string, headers map[string]string) (int, []byte, error) {
	req, err := http.NewRequest("POST", url+"/v1/scale", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, b, err
}

// postWith issues a scale request with extra headers.
func postWith(t *testing.T, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/scale", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// A request beyond -max-queue must be shed with 429 + Retry-After +
// retry_after_seconds, and a shed request must never start a search.
func TestQueueFullSheds(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1, Obs: o})
	var searches atomic.Int32
	hold := make(chan struct{})
	srv.testSearchStarted = func(ctx context.Context, bench string) {
		if searches.Add(1) == 1 {
			<-hold
		}
	}
	defer close(hold)

	// Leader A occupies the only slot (parked in the hook).
	respA := make(chan int, 1)
	go func() {
		status, _, _ := tryPost(ts.URL, `{"benchmark":"veccombine","toq":0.91}`, nil)
		respA <- status
	}()
	waitFor(t, func() bool { return searches.Load() == 1 })

	// Leader B (distinct fingerprint) fills the queue.
	respB := make(chan int, 1)
	go func() {
		status, _, _ := tryPost(ts.URL, `{"benchmark":"veccombine","toq":0.92}`, nil)
		respB <- status
	}()
	waitFor(t, func() bool { return srv.admit.Depth() == 1 })
	if v := o.Metrics().Gauge("service_queue_depth").Value(); v != 1 {
		t.Errorf("service_queue_depth = %v, want 1", v)
	}

	// C (another distinct fingerprint) finds the queue full: shed now.
	resp, body := postScale(t, ts, `{"benchmark":"veccombine","toq":0.94}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	var e struct {
		Code              string `json:"code"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("non-envelope 429 body: %s", body)
	}
	if e.Code != "overloaded" || e.RetryAfterSeconds < 1 {
		t.Errorf("envelope = %+v, want code overloaded and retry_after_seconds >= 1", e)
	}
	if v := o.Metrics().Counter("service_shed", obs.L("reason", "queue_full")).Value(); v != 1 {
		t.Errorf("shed counter = %v, want 1", v)
	}
	// The shed request never started a search: only A has (B is queued).
	if got := searches.Load(); got != 1 {
		t.Errorf("searches started = %d, want 1 (shed request must not search)", got)
	}

	hold <- struct{}{} // release A; close(hold) would panic the second send
	if s := <-respA; s != http.StatusOK {
		t.Errorf("A: status %d", s)
	}
	if s := <-respB; s != http.StatusOK {
		t.Errorf("B: status %d", s)
	}
	if got := searches.Load(); got != 2 {
		t.Errorf("searches after drain = %d, want 2", got)
	}
}

// A request whose declared deadline cannot be met given the observed
// p99 search time must be shed without searching.
func TestDeadlineSheds(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{Workers: 1, Obs: o})
	var searches atomic.Int32
	srv.testSearchStarted = func(ctx context.Context, bench string) { searches.Add(1) }

	// Pretend past searches took 10s at p99; a 50ms deadline is hopeless.
	srv.searchSeconds.Observe(10.0)
	resp, body := postWith(t, ts.URL, `{"benchmark":"veccombine"}`,
		map[string]string{"X-Deadline-Ms": "50"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if searches.Load() != 0 {
		t.Error("deadline-shed request started a search")
	}
	if v := o.Metrics().Counter("service_shed", obs.L("reason", "deadline")).Value(); v != 1 {
		t.Errorf("deadline shed counter = %v, want 1", v)
	}

	// A generous deadline sails through.
	resp, body = postWith(t, ts.URL, `{"benchmark":"veccombine"}`,
		map[string]string{"X-Deadline-Ms": "600000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous deadline: status %d: %s", resp.StatusCode, body)
	}
	if searches.Load() != 1 {
		t.Errorf("searches = %d, want 1", searches.Load())
	}
}

// Freed slots dispatch round-robin across client ids: a client with one
// queued request is served after at most one request of a flooding
// client, not after its whole backlog.
func TestFairQueueRoundRobin(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 8, Obs: obs.New()})
	var mu sync.Mutex
	var order []string
	hold := make(chan struct{})
	releaseHold := sync.OnceFunc(func() { close(hold) })
	// Release the parked search even on a mid-test Fatal: the httptest
	// Close cleanup waits for outstanding requests and would deadlock.
	defer releaseHold()
	first := true
	srv.testSearchStarted = func(ctx context.Context, bench string) {
		mu.Lock()
		order = append(order, bench)
		wasFirst := first
		first = false
		mu.Unlock()
		if wasFirst {
			<-hold
		}
	}

	var wg sync.WaitGroup
	post := func(body, client string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tryPost(ts.URL, body, map[string]string{"X-Client-Id": client})
		}()
	}

	// Occupy the slot, then flood client A's queue, then one B request.
	post(`{"benchmark":"veccombine","toq":0.90}`, "warm")
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 1
	})
	for i := 0; i < 4; i++ {
		post(fmt.Sprintf(`{"benchmark":"veccombine","toq":0.8%d}`, i+1), "floodA")
		waitFor(t, func() bool { return srv.admit.Depth() == i+1 })
	}
	post(`{"benchmark":"halfhostile"}`, "clientB")
	waitFor(t, func() bool { return srv.admit.Depth() == 5 })

	releaseHold()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// order[0] is the warm-up; B must run within the first two grants
	// (one A request may legitimately go first in the round-robin).
	pos := -1
	for i, b := range order {
		if b == "halfhostile" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 2 {
		t.Errorf("clientB search at position %d of %v, want <= 2 (round-robin)", pos, order)
	}
}

// A client that disconnects while queued must relinquish its queue
// position without ever occupying a slot.
func TestQueuedDisconnectFreesPosition(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1, Obs: o})
	var searches atomic.Int32
	hold := make(chan struct{})
	srv.testSearchStarted = func(ctx context.Context, bench string) {
		if searches.Add(1) == 1 {
			<-hold
		}
	}
	defer close(hold)

	go tryPost(ts.URL, `{"benchmark":"veccombine","toq":0.91}`, nil)
	waitFor(t, func() bool { return searches.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/scale",
		strings.NewReader(`{"benchmark":"veccombine","toq":0.92}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, func() bool { return srv.admit.Depth() == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled queued request returned a response")
	}
	waitFor(t, func() bool { return srv.admit.Depth() == 0 })
	hold <- struct{}{} // release the first search
	// The queue position is free again: a third request is admitted
	// instead of being shed.
	resp, body := postWith(t, ts.URL, `{"benchmark":"veccombine","toq":0.93}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect request: status %d: %s", resp.StatusCode, body)
	}
	if searches.Load() != 2 {
		t.Errorf("searches = %d, want 2 (the canceled waiter never searched)", searches.Load())
	}
}

// waitFor polls a condition with a hard deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// Retry-After estimates carry ±20% jitter so shed clients don't retry
// in one synchronized wave. Pinned jitter makes the spread exact.
func TestRetryAfterJitter(t *testing.T) {
	q := newFairQueue(1, 4, obs.New().Metrics())
	// depth 4, 1 worker, p99 2s: base estimate (4+1)/1*2 = 10s.
	cases := []struct {
		jitter float64
		want   int
	}{
		{0, 10},   // no spread
		{1, 12},   // +20%
		{-1, 8},   // -20%
		{0.5, 11}, // +10%
	}
	for _, c := range cases {
		q.jitter = func() float64 { return c.jitter }
		if got := q.retryAfterSeconds(4, 2); got != c.want {
			t.Errorf("jitter %+.1f: retryAfterSeconds = %d, want %d", c.jitter, got, c.want)
		}
	}
	// The clamp bounds whatever the jitter does: never below 1s, never
	// above 60s.
	q.jitter = func() float64 { return -1 }
	if got := q.retryAfterSeconds(0, 0.01); got != 1 {
		t.Errorf("tiny estimate = %d, want clamped to 1", got)
	}
	q.jitter = func() float64 { return 1 }
	if got := q.retryAfterSeconds(1000, 10); got != 60 {
		t.Errorf("huge estimate = %d, want clamped to 60", got)
	}
	// The default jitter source stays inside [-1, 1): a sampled run must
	// keep estimates within the ±20% band around the 10s base.
	q = newFairQueue(1, 4, obs.New().Metrics())
	for i := 0; i < 200; i++ {
		got := q.retryAfterSeconds(4, 2)
		if got < 8 || got > 12 {
			t.Fatalf("default jitter produced %d, outside [8, 12]", got)
		}
	}
}
