package service

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// testBreaker builds a breaker with a controllable clock and zero
// jitter, so state transitions are exact.
func testBreaker(t *testing.T) (*breaker, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	b := newBreaker(obs.New().Metrics().Gauge("service_breaker_state", obs.L("peer", "p:1")))
	b.now = func() time.Time { return now }
	b.jitter = func() float64 { return 0 }
	return b, &now
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := testBreaker(t)
	for i := 0; i < defaultBreakerThreshold-1; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker refused after %d failures, threshold is %d", i+1, defaultBreakerThreshold)
		}
		if got := b.State(); got != breakerClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
	}
	b.Failure()
	if got := b.State(); got != breakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Allow() {
		t.Error("open breaker allowed a request before backoff elapsed")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := testBreaker(t)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != breakerClosed {
		t.Fatalf("state = %v, want closed (success reset the count)", got)
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	b, now := testBreaker(t)
	for i := 0; i < defaultBreakerThreshold; i++ {
		b.Failure()
	}
	// Backoff not yet elapsed: refused.
	if b.Allow() {
		t.Fatal("allowed before backoff")
	}
	*now = now.Add(defaultBreakerBackoff)
	// Backoff elapsed: exactly one trial admitted.
	if !b.Allow() {
		t.Fatal("trial refused after backoff elapsed")
	}
	if got := b.State(); got != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Allow() {
		t.Error("second concurrent trial admitted while one is in flight")
	}
	// Trial succeeds: closed, backoff reset.
	b.Success()
	if got := b.State(); got != breakerClosed {
		t.Fatalf("state after trial success = %v, want closed", got)
	}
	if b.backoff != defaultBreakerBackoff {
		t.Errorf("backoff = %v, want reset to %v", b.backoff, defaultBreakerBackoff)
	}
}

func TestBreakerHalfOpenFailureDoublesBackoff(t *testing.T) {
	b, now := testBreaker(t)
	for i := 0; i < defaultBreakerThreshold; i++ {
		b.Failure()
	}
	backoff := defaultBreakerBackoff
	for round := 0; round < 10; round++ {
		*now = now.Add(backoff)
		if !b.Allow() {
			t.Fatalf("round %d: trial refused after %v backoff", round, backoff)
		}
		b.Failure() // trial failed
		if got := b.State(); got != breakerOpen {
			t.Fatalf("round %d: state = %v, want re-opened", round, got)
		}
		backoff = min(2*backoff, defaultBreakerMax)
		if b.backoff != backoff {
			t.Fatalf("round %d: backoff = %v, want %v", round, b.backoff, backoff)
		}
	}
	if b.backoff != defaultBreakerMax {
		t.Errorf("backoff never capped: %v", b.backoff)
	}
}

func TestBreakerForceTransitions(t *testing.T) {
	b, now := testBreaker(t)
	b.ForceOpen()
	if got := b.State(); got != breakerOpen {
		t.Fatalf("state after ForceOpen = %v, want open", got)
	}
	if b.Allow() {
		t.Error("forced-open breaker allowed a request")
	}
	b.ForceClose()
	if got := b.State(); got != breakerClosed {
		t.Fatalf("state after ForceClose = %v, want closed", got)
	}
	if !b.Allow() {
		t.Error("forced-closed breaker refused a request")
	}
	// ForceOpen on an already-open breaker must not extend the deadline.
	b.ForceOpen()
	until := b.until
	*now = now.Add(100 * time.Millisecond)
	b.ForceOpen()
	if b.until != until {
		t.Error("ForceOpen on open breaker pushed the half-open deadline")
	}
}
