package service

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func testID(i int) string { return fmt.Sprintf("%016x", uint64(i)+0xabc) }

// openTestJournal opens a journal over dir with no live cache behind it
// (compaction snapshots whatever records fn returns; nil means empty).
func openTestJournal(t *testing.T, dir string, snapshot func() []persistRecord) (*journal, []persistRecord) {
	t.Helper()
	if snapshot == nil {
		snapshot = func() []persistRecord { return nil }
	}
	j, recs, err := openJournal(dir, 0, snapshot, obs.New().Metrics(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

// writeWAL crafts a WAL file from encoded records plus optional raw
// tail bytes, without going through a journal (whose close always
// compacts).
func writeWAL(t *testing.T, dir string, recs []persistRecord, tail []byte) {
	t.Helper()
	var buf []byte
	for _, rec := range recs {
		buf = append(buf, encodeRecord(rec)...)
	}
	buf = append(buf, tail...)
	if err := os.WriteFile(filepath.Join(dir, walFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// The snapshot closure emulates a cache holding everything appended;
	// Close's final compaction reads it after the appends have drained.
	var snap []persistRecord
	j, recs := openTestJournal(t, dir, func() []persistRecord { return snap })
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := map[string]string{}
	for i := 0; i < 20; i++ {
		id := testID(i)
		body := fmt.Sprintf(`{"decision":%d}`, i)
		want[id] = body
		snap = append(snap, persistRecord{id: id, body: []byte(body)})
		j.append(id, []byte(body))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openTestJournal(t, dir, nil)
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for _, rec := range recs {
		if want[rec.id] != string(rec.body) {
			t.Errorf("record %s body = %q, want %q", rec.id, rec.body, want[rec.id])
		}
	}
}

// A torn write (kill -9 mid-append) must truncate the tail and keep
// every record before it — corruption is never fatal.
func TestJournalCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	good := []persistRecord{
		{id: testID(1), body: []byte("body-one")},
		{id: testID(2), body: []byte("body-two")},
	}
	// Header promising 42 payload bytes, then only 3: a torn append.
	writeWAL(t, dir, good, []byte{0, 0, 0, 42, 9, 9, 9, 9, 1, 2, 3})

	o := obs.New()
	j, recs, err := openJournal(dir, 0, func() []persistRecord { return nil }, o.Metrics(), nil)
	if err != nil {
		t.Fatalf("corrupt tail must not be fatal: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 before the torn tail", len(recs))
	}
	for i, rec := range recs {
		if rec.id != good[i].id || string(rec.body) != string(good[i].body) {
			t.Errorf("record %d = %s/%q, want %s/%q", i, rec.id, rec.body, good[i].id, good[i].body)
		}
	}
	if v := o.Metrics().Counter("service_persist", obs.L("event", "corrupt_truncated")).Value(); v != 1 {
		t.Errorf("corrupt_truncated = %v, want 1", v)
	}
	if v := o.Metrics().Counter("service_persist", obs.L("event", "replayed")).Value(); v != 2 {
		t.Errorf("replayed = %v, want 2", v)
	}
	// The truncation put the file back on a record boundary: an append
	// after reopen lands cleanly after the surviving records.
	wantSize := int64(len(encodeRecord(good[0])) + len(encodeRecord(good[1])))
	st, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != wantSize {
		t.Errorf("WAL size after truncation = %d, want %d", st.Size(), wantSize)
	}
	j.Close()
}

// A flipped payload byte (checksum mismatch mid-file) truncates from
// that record onward.
func TestJournalBadChecksumTruncates(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = append(buf, encodeRecord(persistRecord{id: testID(1), body: []byte("aaaa")})...)
	buf = append(buf, encodeRecord(persistRecord{id: testID(2), body: []byte("bbbb")})...)
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, walFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := openTestJournal(t, dir, nil)
	defer j.Close()
	if len(recs) != 1 || recs[0].id != testID(1) {
		t.Fatalf("replay after checksum corruption = %+v, want just record 1", recs)
	}
}

// The WAL compacts into the snapshot once it outgrows maxWAL; the
// snapshot reflects the live cache, not the raw append history, and the
// WAL resets to empty.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	cache := []persistRecord{
		{id: testID(100), body: []byte("kept-1")},
		{id: testID(101), body: []byte("kept-2")},
	}
	j, _, err := openJournal(dir, 256, func() []persistRecord { return cache },
		obs.New().Metrics(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Push well past the 256-byte threshold.
	for i := 0; i < 50; i++ {
		j.append(testID(i), []byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	}
	waitFor(t, func() bool {
		st, err := os.Stat(filepath.Join(dir, snapFile))
		return err == nil && st.Size() > 0
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openTestJournal(t, dir, nil)
	if len(recs) != len(cache) {
		t.Fatalf("replayed %d records, want the %d cache entries", len(recs), len(cache))
	}
	for i, rec := range recs {
		if rec.id != cache[i].id || string(rec.body) != string(cache[i].body) {
			t.Errorf("record %d = %s/%q, want %s/%q", i, rec.id, rec.body, cache[i].id, cache[i].body)
		}
	}
	st, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Errorf("WAL size after compaction = %d, want 0", st.Size())
	}
}

// Appends with malformed ids are refused before they can poison the
// on-disk format (ids are always 16-byte fingerprint hex).
func TestJournalRejectsBadID(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir, nil)
	j.append("short", []byte("body"))
	j.append("", []byte("body"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openTestJournal(t, dir, nil)
	if len(recs) != 0 {
		t.Fatalf("malformed ids journaled: %+v", recs)
	}
}
