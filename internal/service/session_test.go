package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func createSession(t *testing.T, ts *httptest.Server, body string) (*api.Session, *http.Response) {
	t.Helper()
	resp, b := postJSON(t, ts, "/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", resp.StatusCode, b)
	}
	var sess api.Session
	if err := json.Unmarshal(b, &sess); err != nil {
		t.Fatalf("create session: %v\n%s", err, b)
	}
	return &sess, resp
}

func evaluate(t *testing.T, ts *httptest.Server, id, body string) (*api.EvaluateResponse, []byte) {
	t.Helper()
	resp, b := postJSON(t, ts, "/v1/sessions/"+id+"/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: status %d: %s", resp.StatusCode, b)
	}
	var ev api.EvaluateResponse
	if err := json.Unmarshal(b, &ev); err != nil {
		t.Fatalf("evaluate: %v\n%s", err, b)
	}
	return &ev, b
}

// Creating a session runs the ordinary cold search: the session's
// decision lands in the decision cache under its fingerprint with bytes
// identical to a plain /v1/scale answer, and the session document is
// re-fetchable.
func TestSessionCreateColdIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, bare := postScale(t, ts, `{"benchmark":"veccombine","input_set":"random"}`)

	sess, resp := createSession(t, ts, `{"benchmark":"veccombine","input_set":"random"}`)
	if !strings.HasPrefix(sess.ID, "sess") || len(sess.ID) != 16 {
		t.Errorf("session id %q, want sess + 12 hex digits", sess.ID)
	}
	if sess.Generation != 1 || sess.Decision == nil || sess.InputSet != "random" {
		t.Errorf("session document incomplete: %+v", sess)
	}
	id := resp.Header.Get("X-Decision-Id")
	if id == "" {
		t.Fatal("create response missing X-Decision-Id")
	}
	dResp, err := http.Get(ts.URL + "/v1/decisions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	dBody, _ := io.ReadAll(dResp.Body)
	dResp.Body.Close()
	if dResp.StatusCode != http.StatusOK || !bytes.Equal(dBody, bare) {
		t.Errorf("session's decision differs from the plain /v1/scale body")
	}

	gResp, gBody := getSession(t, ts, sess.ID)
	if gResp.StatusCode != http.StatusOK {
		t.Fatalf("get session: status %d", gResp.StatusCode)
	}
	var got api.Session
	if err := json.Unmarshal(gBody, &got); err != nil || got.ID != sess.ID || got.Generation != 1 {
		t.Errorf("get session: %s", gBody)
	}
}

func getSession(t *testing.T, ts *httptest.Server, id string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// Unknown and deleted sessions answer with the 404 error envelope on
// every session route.
func TestSessionNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	check := func(what string, resp *http.Response, body []byte) {
		t.Helper()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404: %s", what, resp.StatusCode, body)
			return
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil || e.Code != "not_found" || e.Schema != api.Schema {
			t.Errorf("%s: bad envelope %s", what, body)
		}
	}

	resp, b := getSession(t, ts, "sess000000000bad")
	check("get", resp, b)
	resp, b = postJSON(t, ts, "/v1/sessions/sess000000000bad/evaluate", `{}`)
	check("evaluate", resp, b)
	eResp, err := http.Get(ts.URL + "/v1/sessions/sess000000000bad/events")
	if err != nil {
		t.Fatal(err)
	}
	eBody, _ := io.ReadAll(eResp.Body)
	eResp.Body.Close()
	check("events", eResp, eBody)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/sess000000000bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	dResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dBody, _ := io.ReadAll(dResp.Body)
	dResp.Body.Close()
	check("delete", dResp, dBody)

	// Delete a real session, then every route must 404.
	sess, _ := createSession(t, ts, `{"benchmark":"veccombine"}`)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sess.ID, nil)
	dResp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dResp.Body)
	dResp.Body.Close()
	if dResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete live session: status %d", dResp.StatusCode)
	}
	resp, b = getSession(t, ts, sess.ID)
	check("get after delete", resp, b)
}

// An idle session past its TTL is reclaimed lazily: the next touch
// answers 404 and the drop is counted with reason "expired".
func TestSessionExpiry(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{Obs: o})
	var mu sync.Mutex
	cur := time.Now()
	srv.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return cur
	}

	sess, _ := createSession(t, ts, `{"benchmark":"veccombine","ttl_seconds":10}`)
	if sess.TTLSeconds != 10 {
		t.Errorf("ttl_seconds %d, want 10", sess.TTLSeconds)
	}
	resp, _ := getSession(t, ts, sess.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-expiry get: status %d", resp.StatusCode)
	}

	mu.Lock()
	cur = cur.Add(11 * time.Second)
	mu.Unlock()
	resp, body := getSession(t, ts, sess.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-expiry get: status %d: %s", resp.StatusCode, body)
	}
	if v := o.Metrics().Counter("service_session_drops", obs.L("reason", "expired")).Value(); v != 1 {
		t.Errorf("expired-drop counter = %v, want 1", v)
	}
}

// The tentpole scenario: a session scaled for one input distribution
// sees a drifted batch, detects it, and re-scales warm — new
// generation, reason "drift", strictly fewer trials than the cold
// search for the same drifted input.
func TestSessionDriftRescale(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, Config{Obs: o})
	sess, _ := createSession(t, ts, `{"benchmark":"veccombine","input_set":"random"}`)

	// Same distribution: no drift, no re-scale.
	ev1, _ := evaluate(t, ts, sess.ID, `{}`)
	if ev1.Generation != 1 || ev1.Rescaled || ev1.RescaleReason != "" {
		t.Fatalf("in-distribution evaluate: %+v", ev1)
	}
	if !ev1.TOQMet {
		t.Errorf("in-distribution batch missed TOQ: quality %.4f < %.4f", ev1.Quality, ev1.TOQ)
	}
	for _, d := range ev1.Drift {
		if d.Drifted {
			t.Errorf("object %s drifted on in-distribution batch (shift %.4f)", d.Object, d.Shift)
		}
	}

	// Image pixels in [0,256) against a reference scaled for [0,1):
	// every input object's distribution moved by orders of magnitude.
	ev2, _ := evaluate(t, ts, sess.ID, `{"input_set":"image"}`)
	if !ev2.Rescaled || ev2.RescaleReason != "drift" || ev2.Generation != 2 {
		t.Fatalf("drifted evaluate did not re-scale: %+v", ev2)
	}
	drifted := false
	for _, d := range ev2.Drift {
		drifted = drifted || d.Drifted
	}
	if !drifted {
		t.Error("drifted evaluate reported no drifted object")
	}
	if v := o.Metrics().Counter("service_rescale", obs.L("reason", "drift")).Value(); v != 1 {
		t.Errorf("rescale counter = %v, want 1", v)
	}

	// The new generation is live and warm-searched: the session document
	// advances, its decision is for the drifted set, and the warm search
	// spent strictly fewer trials than a cold search on the same input.
	_, gBody := getSession(t, ts, sess.ID)
	var got api.Session
	if err := json.Unmarshal(gBody, &got); err != nil {
		t.Fatal(err)
	}
	if got.Generation != 2 || got.InputSet != "image" {
		t.Fatalf("post-drift session: generation %d input %q", got.Generation, got.InputSet)
	}
	if got.Decision.InputSet != "image" {
		t.Errorf("generation-2 decision input_set %q, want image", got.Decision.InputSet)
	}
	if bytes.Equal(mustJSON(t, got.Decision), mustJSON(t, sess.Decision)) {
		t.Error("generation-2 decision identical to generation 1")
	}
	respCold, coldBody := postScale(t, ts, `{"benchmark":"veccombine","input_set":"image"}`)
	if respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold image scale: status %d", respCold.StatusCode)
	}
	var cold api.Decision
	if err := json.Unmarshal(coldBody, &cold); err != nil {
		t.Fatal(err)
	}
	if got.Decision.Search.Trials >= cold.Search.Trials {
		t.Errorf("warm re-scale spent %d trials, cold search %d — warm must be strictly cheaper",
			got.Decision.Search.Trials, cold.Search.Trials)
	}

	// A follow-up batch from the new distribution is in-distribution now.
	ev3, _ := evaluate(t, ts, sess.ID, `{"input_set":"image"}`)
	if ev3.Rescaled || ev3.Generation != 2 || !ev3.TOQMet {
		t.Errorf("post-rescale evaluate: %+v", ev3)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Concurrent evaluates on one session serialize on its mutex: all
// succeed, every response observes a consistent generation, and
// identical in-distribution batches never trigger a re-scale however
// they interleave.
func TestSessionConcurrentEvaluates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sess, _ := createSession(t, ts, `{"benchmark":"veccombine","input_set":"random"}`)

	const n = 8
	responses := make([]*api.EvaluateResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/evaluate",
				"application/json", strings.NewReader(`{}`))
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent evaluate %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			var ev api.EvaluateResponse
			if err := json.Unmarshal(b, &ev); err != nil {
				t.Errorf("concurrent evaluate %d: %v", i, err)
				return
			}
			responses[i] = &ev
		}(i)
	}
	wg.Wait()
	for i, ev := range responses {
		if ev == nil {
			continue
		}
		if ev.Generation != 1 || ev.Rescaled || ev.RescaleFailed {
			t.Errorf("concurrent evaluate %d saw generation churn: %+v", i, ev)
		}
		if ev.Quality != responses[0].Quality || !ev.TOQMet {
			t.Errorf("concurrent evaluate %d quality %v, want %v", i, ev.Quality, responses[0].Quality)
		}
	}
}

// When the warm re-search cannot run (admission rejects it), the
// previous generation stays in force: the evaluate answer carries
// rescale_failed, the generation does not advance, and the next
// drifted batch triggers the re-scale again.
func TestSessionRescaleFailureKeepsGeneration(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1, Obs: o})

	sess, _ := createSession(t, ts, `{"benchmark":"veccombine","input_set":"random"}`)

	// Park one search on the only worker slot and queue another, so the
	// admission queue is at capacity when the re-scale asks for a slot.
	started := make(chan struct{})
	block := make(chan struct{})
	srv.testSearchStarted = func(ctx context.Context, bench string) {
		if bench == "halfhostile" {
			close(started)
			<-block
		}
	}
	parkedDone := make(chan struct{})
	go func() {
		defer close(parkedDone)
		resp, err := http.Post(ts.URL+"/v1/scale", "application/json",
			strings.NewReader(`{"benchmark":"halfhostile"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		resp, err := http.Post(ts.URL+"/v1/scale", "application/json",
			strings.NewReader(`{"benchmark":"veccombine","toq":0.52}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return srv.admit.Depth() == 1 })

	ev, _ := evaluate(t, ts, sess.ID, `{"input_set":"image"}`)
	close(block)
	<-parkedDone
	<-queuedDone

	if !ev.RescaleFailed || ev.Rescaled || ev.Generation != 1 || ev.RescaleReason != "drift" {
		t.Fatalf("shed re-scale: %+v", ev)
	}
	if v := o.Metrics().Counter("service_rescale_failures").Value(); v != 1 {
		t.Errorf("rescale-failure counter = %v, want 1", v)
	}
	resp, gBody := getSession(t, ts, sess.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failure get: status %d", resp.StatusCode)
	}
	var got api.Session
	if err := json.Unmarshal(gBody, &got); err != nil || got.Generation != 1 {
		t.Fatalf("generation advanced despite failed re-scale: %s", gBody)
	}

	// Capacity is back: the same drifted batch re-triggers and succeeds.
	ev2, _ := evaluate(t, ts, sess.ID, `{"input_set":"image"}`)
	if !ev2.Rescaled || ev2.Generation != 2 {
		t.Fatalf("retry after shed did not re-scale: %+v", ev2)
	}
}

// The whole session lifecycle is deterministic at any worker count:
// identical evaluate streams produce identical generation sequences
// with byte-identical response bodies.
func TestSessionDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) [][]byte {
		_, ts := newTestServer(t, Config{Workers: workers})
		var out [][]byte
		resp, b := postJSON(t, ts, "/v1/sessions", `{"benchmark":"veccombine","input_set":"random"}`)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create (workers=%d): status %d: %s", workers, resp.StatusCode, b)
		}
		out = append(out, b)
		for _, body := range []string{`{}`, `{"input_set":"image"}`, `{"input_set":"image"}`} {
			resp, b := postJSON(t, ts, "/v1/sessions/sess000000000001/evaluate", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("evaluate (workers=%d): status %d: %s", workers, resp.StatusCode, b)
			}
			out = append(out, b)
		}
		_, b = getSession(t, ts, "sess000000000001")
		out = append(out, b)
		return out
	}
	one := run(1)
	eight := run(8)
	for i := range one {
		if !bytes.Equal(one[i], eight[i]) {
			t.Errorf("step %d differs between Workers=1 and Workers=8:\n%s\nvs\n%s", i, one[i], eight[i])
		}
	}
}

// Open sessions survive a restart: the journal snapshot rebuilds the
// session — generation, decision, drift state — and evaluates keep
// working against the restored state.
func TestSessionJournalReplay(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Server, *httptest.Server, *obs.Observer) {
		o := obs.New()
		srv, err := New(Config{Workers: 2, Obs: o, Workload: testWorkloads, PersistDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return srv, ts, o
	}

	srv1, ts1, _ := mk()
	sess, _ := createSession(t, ts1, `{"benchmark":"veccombine","input_set":"random"}`)
	ev, _ := evaluate(t, ts1, sess.ID, `{"input_set":"image"}`)
	if !ev.Rescaled || ev.Generation != 2 {
		t.Fatalf("drift evaluate before restart: %+v", ev)
	}
	_, before := getSession(t, ts1, sess.ID)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2, o2 := mk()
	defer srv2.Close()
	if v := o2.Metrics().Counter("service_session_restore", obs.L("result", "ok")).Value(); v != 1 {
		t.Errorf("restore counter = %v, want 1", v)
	}
	resp, after := getSession(t, ts2, sess.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored session get: status %d: %s", resp.StatusCode, after)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("restored session document differs:\nbefore: %s\nafter:  %s", before, after)
	}
	ev2, _ := evaluate(t, ts2, sess.ID, `{"input_set":"image"}`)
	if ev2.Rescaled || ev2.Generation != 2 || !ev2.TOQMet {
		t.Errorf("evaluate against restored session: %+v", ev2)
	}

	// A fresh session on the restarted server must not collide with the
	// restored id: the sequence resumes past it.
	sess2, _ := createSession(t, ts2, `{"benchmark":"veccombine"}`)
	if sess2.ID == sess.ID {
		t.Errorf("restarted server reissued session id %s", sess.ID)
	}
}
