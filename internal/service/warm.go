package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/obs"
)

// Replica warming: after a node computes a decision it pushes the
// encoded body to the fingerprint's other replicas (POST
// /v1/decisions/{id}/warm), so a failover request routed to a replica
// finds the decision already cached — failover without recompute. The
// push is asynchronous and best-effort: a lost warm costs one repeated
// search after a failover, never correctness.
//
// The receiver does not trust the sender's id blindly: it decodes the
// body's identifying fields (benchmark, system, TOQ, input set),
// recomputes the fingerprint through the same prepare path a scale
// request takes, and stores only on a match. Past that check the write
// is blind — by the determinism invariant a given fingerprint has
// exactly one valid body, so there is nothing else to reconcile.

// warmBodyLimit bounds a warm request body; decision bodies are a few
// KiB, so anything near the limit is garbage.
const warmBodyLimit = 8 << 20

// defaultWarmTimeout bounds one outbound warm push.
const defaultWarmTimeout = 5 * time.Second

// handleWarm is POST /v1/decisions/{id}/warm.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	m := s.obs.Metrics()
	m.Counter("service_requests", obs.L("endpoint", "warm")).Inc()
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, warmBodyLimit+1))
	if err != nil || len(body) == 0 || len(body) > warmBodyLimit {
		m.Counter("service_warm", obs.L("result", "bad_request")).Inc()
		s.writeError(w, fmt.Errorf("%w: unreadable warm body", api.ErrBadRequest))
		return
	}
	var d struct {
		Benchmark string  `json:"benchmark"`
		System    string  `json:"system"`
		TOQ       float64 `json:"toq"`
		InputSet  string  `json:"input_set"`
	}
	if err := json.Unmarshal(body, &d); err != nil {
		m.Counter("service_warm", obs.L("result", "bad_request")).Inc()
		s.writeError(w, fmt.Errorf("%w: %v", api.ErrBadRequest, err))
		return
	}
	job, err := s.prepare(&api.ScaleRequest{
		Benchmark: d.Benchmark, System: d.System, TOQ: d.TOQ, InputSet: d.InputSet,
	})
	if err != nil {
		m.Counter("service_warm", obs.L("result", "bad_request")).Inc()
		s.writeError(w, err)
		return
	}
	if job.id != id {
		m.Counter("service_warm", obs.L("result", "mismatch")).Inc()
		s.writeError(w, fmt.Errorf("%w: warm body fingerprints to %s, not %s",
			api.ErrBadRequest, job.id, id))
		return
	}
	s.store(id, body, nil)
	m.Counter("service_warm", obs.L("result", "stored")).Inc()
	w.WriteHeader(http.StatusNoContent)
}

// warmReplicas pushes a freshly computed decision to the fingerprint's
// other replicas. Runs on its own goroutine; failures are counted and
// logged, never surfaced to the client whose request triggered the
// compute. Breaker-open peers are skipped — warming a peer the data
// path refuses to dial would just burn the timeout.
func (s *Server) warmReplicas(id string, body []byte) {
	m := s.obs.Metrics()
	owners := s.view.Ring().OwnerN(id, s.replication)
	for _, owner := range owners {
		if owner == s.self {
			continue
		}
		if br := s.breakerFor(owner); br != nil && br.State() == breakerOpen {
			m.Counter("service_warm", obs.L("result", "skipped")).Inc()
			continue
		}
		m.Counter("service_warm", obs.L("result", "sent")).Inc()
		if err := s.warmOne(owner, id, body); err != nil {
			m.Counter("service_warm", obs.L("result", "send_error")).Inc()
			if s.logger != nil {
				s.logger.Warn("replica warm failed", "peer", owner, "decision_id", id, "err", err.Error())
			}
			continue
		}
		m.Counter("service_warm", obs.L("result", "ok")).Inc()
	}
	if s.testWarmed != nil {
		s.testWarmed(id)
	}
}

// warmOne issues one warm push through the typed client; the short
// per-push timeout lives in s.warmClient.
func (s *Server) warmOne(owner, id string, body []byte) error {
	cl := &client.Client{Targets: []string{owner}, HTTPClient: s.warmClient}
	return cl.Warm(context.Background(), id, body)
}
