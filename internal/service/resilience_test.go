package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// postScale issues one scale request and returns the response plus its
// drained body.
func postScaleURL(t *testing.T, url, reqBody string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scale", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// With replication 2, the primary's compute must asynchronously warm
// the second replica's cache, and after the primary dies the replica
// answers the hot fingerprint as a local hit — failover without
// recompute.
func TestReplicationWarmsReplicaAndFailsOver(t *testing.T) {
	warmed := make(chan string, 8)
	nodes := startClusterCfg(t, 3, func(i int, cfg *Config) {
		cfg.Replication = 2
	})
	for _, n := range nodes {
		n.srv.testWarmed = func(id string) { warmed <- id }
	}
	byAddr := map[string]*clusterNode{}
	for _, n := range nodes {
		byAddr[n.addr] = n
	}

	reqBody := `{"benchmark":"veccombine","toq":0.9}`
	id := fingerprintFor(t, nodes[0], reqBody)
	owners := nodes[0].srv.view.Ring().OwnerN(id, 2)
	if len(owners) != 2 || owners[0] == owners[1] {
		t.Fatalf("OwnerN(2) = %v", owners)
	}
	primary, replica := byAddr[owners[0]], byAddr[owners[1]]
	var outsider *clusterNode
	for _, n := range nodes {
		if n != primary && n != replica {
			outsider = n
		}
	}

	// Compute on the primary.
	resp, primaryBody := postScaleURL(t, primary.url(), reqBody)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("primary: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if route := resp.Header.Get("X-Cluster-Route"); route != "primary" {
		t.Errorf("X-Cluster-Route = %q, want primary", route)
	}
	if got := <-warmed; got != id {
		t.Fatalf("warmed id = %s, want %s", got, id)
	}

	// The warm landed on the replica — and only there.
	if _, ok := replica.srv.cached(id); !ok {
		t.Fatal("replica cache cold after warm push")
	}
	if _, ok := outsider.srv.cached(id); ok {
		t.Error("non-replica node received a warm push")
	}
	if v := primary.obs.Metrics().Counter("service_warm", obs.L("result", "ok")).Value(); v != 1 {
		t.Errorf("primary warm ok counter = %v, want 1", v)
	}
	if v := replica.obs.Metrics().Counter("service_warm", obs.L("result", "stored")).Value(); v != 1 {
		t.Errorf("replica warm stored counter = %v, want 1", v)
	}

	// Kill the primary: a request hitting the replica directly is a
	// local hit at its replica slot — no search, no proxy.
	primary.hs.Close()
	resp, replicaBody := postScaleURL(t, replica.url(), reqBody)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("replica after primary death: status %d, X-Cache %q",
			resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if route := resp.Header.Get("X-Cluster-Route"); route != "replica-1" {
		t.Errorf("replica X-Cluster-Route = %q, want replica-1", route)
	}
	if !bytes.Equal(primaryBody, replicaBody) {
		t.Error("replica body differs from the primary's — determinism invariant broken")
	}

	// A non-owner proxies: the primary attempt fails fast, the warmed
	// replica answers from cache.
	resp, outsiderBody := postScaleURL(t, outsider.url(), reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outsider: status %d: %s", resp.StatusCode, outsiderBody)
	}
	if c := resp.Header.Get("X-Cache"); c != "remote" {
		t.Errorf("outsider X-Cache = %q, want remote", c)
	}
	if oc := resp.Header.Get("X-Cache-Origin"); oc != "hit" {
		t.Errorf("outsider X-Cache-Origin = %q, want hit (failover without recompute)", oc)
	}
	if route := resp.Header.Get("X-Cluster-Route"); route != "replica-1" {
		t.Errorf("outsider X-Cluster-Route = %q, want replica-1", route)
	}
	if !bytes.Equal(primaryBody, outsiderBody) {
		t.Error("failover body differs from the primary's")
	}
}

// A replica that misses routes to the owners ahead of it instead of
// computing — fleet-wide, one fingerprint still means one search.
func TestReplicaProxiesMissToPrimary(t *testing.T) {
	nodes := startClusterCfg(t, 3, func(i int, cfg *Config) {
		cfg.Replication = 2
	})
	byAddr := map[string]*clusterNode{}
	for _, n := range nodes {
		byAddr[n.addr] = n
	}
	reqBody := `{"benchmark":"veccombine","toq":0.7}`
	id := fingerprintFor(t, nodes[0], reqBody)
	owners := nodes[0].srv.view.Ring().OwnerN(id, 2)
	primary, replica := byAddr[owners[0]], byAddr[owners[1]]

	resp, _ := postScaleURL(t, replica.url(), reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica: status %d", resp.StatusCode)
	}
	if c := resp.Header.Get("X-Cache"); c != "remote" {
		t.Errorf("replica miss X-Cache = %q, want remote (proxied to primary)", c)
	}
	if oc := resp.Header.Get("X-Cache-Origin"); oc != "miss" {
		t.Errorf("X-Cache-Origin = %q, want miss (primary computed)", oc)
	}
	if route := resp.Header.Get("X-Cluster-Route"); route != "primary" {
		t.Errorf("X-Cluster-Route = %q, want primary (slot that answered)", route)
	}
	if _, ok := primary.srv.cached(id); !ok {
		t.Error("primary did not cache its own compute")
	}
}

// The warm endpoint verifies the fingerprint before storing: a body
// pushed under the wrong id is rejected, so a buggy or malicious peer
// cannot poison the cache.
func TestWarmEndpointVerifiesFingerprint(t *testing.T) {
	nodes := startCluster(t, 2)
	reqBody := `{"benchmark":"veccombine","toq":0.9}`
	id := fingerprintFor(t, nodes[0], reqBody)

	// Compute a real decision body on node 0.
	resp, body := postScaleURL(t, nodes[0].url(), reqBody)
	if resp.StatusCode != http.StatusOK {
		// Node 0 may have proxied; either way we hold the canonical body.
		t.Fatalf("scale: status %d", resp.StatusCode)
	}

	warm := func(target *clusterNode, underID string, b []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(target.url()+"/v1/decisions/"+underID+"/warm",
			"application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Correct id: stored.
	if resp := warm(nodes[1], id, body); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid warm: status %d, want 204", resp.StatusCode)
	}
	if _, ok := nodes[1].srv.cached(id); !ok {
		t.Fatal("valid warm not stored")
	}

	// Wrong id: rejected, not stored.
	wrong := "00000000000000ff"
	if resp := warm(nodes[1], wrong, body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched warm: status %d, want 400", resp.StatusCode)
	}
	if _, ok := nodes[1].srv.cached(wrong); ok {
		t.Error("mismatched warm poisoned the cache")
	}
	if v := nodes[1].obs.Metrics().Counter("service_warm", obs.L("result", "mismatch")).Value(); v != 1 {
		t.Errorf("mismatch counter = %v, want 1", v)
	}

	// Garbage body: bad request.
	if resp := warm(nodes[1], id, []byte("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage warm: status %d, want 400", resp.StatusCode)
	}
}

// A server restarted over the same persist dir serves its pre-crash hot
// set as cache hits without re-searching.
func TestWarmRestartFromJournal(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Server, *obs.Observer) {
		t.Helper()
		o := obs.New()
		srv, err := New(Config{
			Workers:    2,
			Obs:        o,
			Workload:   testWorkloads,
			PersistDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv, o
	}

	srv1, _ := mk()
	req, err := http.NewRequest("POST", "/v1/scale", strings.NewReader(`{"benchmark":"veccombine","toq":0.9}`))
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	srv1.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK || rr.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first compute: status %d, X-Cache %q: %s", rr.Code, rr.Header().Get("X-Cache"), rr.Body.String())
	}
	firstBody := rr.Body.String()
	id := rr.Header().Get("X-Decision-Id")
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same dir: the decision replays into the LRU.
	srv2, o2 := mk()
	defer srv2.Close()
	if v := o2.Metrics().Counter("service_persist", obs.L("event", "replayed")).Value(); v < 1 {
		t.Fatalf("replayed counter = %v, want >= 1", v)
	}
	req2, err := http.NewRequest("POST", "/v1/scale", strings.NewReader(`{"benchmark":"veccombine","toq":0.9}`))
	if err != nil {
		t.Fatal(err)
	}
	rr2 := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rr2, req2)
	if rr2.Code != http.StatusOK {
		t.Fatalf("post-restart: status %d: %s", rr2.Code, rr2.Body.String())
	}
	if c := rr2.Header().Get("X-Cache"); c != "hit" {
		t.Errorf("post-restart X-Cache = %q, want hit (served from journal)", c)
	}
	if rr2.Header().Get("X-Decision-Id") != id {
		t.Errorf("post-restart id = %q, want %q", rr2.Header().Get("X-Decision-Id"), id)
	}
	if rr2.Body.String() != firstBody {
		t.Error("post-restart body differs from the pre-crash body")
	}
}

// A probe-detected death advances the membership epoch, shrinks the
// effective ring, and forces the peer's breaker open; recovery reverses
// all three. Driven through onPeerChange directly — the prober's own
// state machine has its own tests.
func TestPeerChangeUpdatesViewAndBreaker(t *testing.T) {
	nodes := startCluster(t, 3)
	srv := nodes[0].srv
	peer := nodes[1].addr
	if srv.view.Epoch() != 1 {
		t.Fatalf("initial epoch = %d", srv.view.Epoch())
	}

	srv.onPeerChange(peer, false)
	if e := srv.view.Epoch(); e != 2 {
		t.Errorf("epoch after death = %d, want 2", e)
	}
	if srv.view.Alive(peer) {
		t.Error("dead peer still in the live set")
	}
	if srv.view.Ring().Contains(peer) {
		t.Error("dead peer still on the effective ring")
	}
	if st := srv.breakerFor(peer).State(); st != breakerOpen {
		t.Errorf("breaker after probe-down = %v, want open", st)
	}
	if g := nodes[0].obs.Metrics().Gauge("service_cluster_epoch").Value(); g != 2 {
		t.Errorf("service_cluster_epoch = %v, want 2", g)
	}

	srv.onPeerChange(peer, true)
	if e := srv.view.Epoch(); e != 3 {
		t.Errorf("epoch after recovery = %d, want 3", e)
	}
	if !srv.view.Ring().Contains(peer) {
		t.Error("recovered peer missing from the effective ring")
	}
	if st := srv.breakerFor(peer).State(); st != breakerClosed {
		t.Errorf("breaker after probe-up = %v, want closed", st)
	}
}
