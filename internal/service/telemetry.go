package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/scaler"
)

// reqTelemetry bundles the telemetry side channels of one cache-miss
// search: the wall-clock trace served from GET /v1/decisions/{id}/trace
// and the SSE progress stream served from GET /v1/decisions/{id}/events.
// All of it observes the search without influencing it — decision
// bodies stay byte-identical with telemetry on or off (pinned by
// TestTelemetryByteIdentity). A nil *reqTelemetry (Config.
// DisableTelemetry) is fully inert; every method is nil-safe.
type reqTelemetry struct {
	id     string // request id from the middleware, "" outside it
	wt     *obs.WallTracer
	stream *stream // nil when the hub is at capacity
	req    *obs.Span
	search *obs.Span
	last   float64 // wall time the previous trial span ended at
}

// newReqTelemetry opens the request span and the SSE stream for one
// cache-miss search.
func (s *Server) newReqTelemetry(rid string, job *scaleJob) *reqTelemetry {
	rt := &reqTelemetry{id: rid, wt: obs.NewWallTracer(), stream: s.hub.start(job.id)}
	rt.req = rt.wt.Begin("scale "+job.w.Name, "request", obs.WallRowRequest,
		obs.A("request_id", rid), obs.A("decision_id", job.id))
	return rt
}

// now reads the wall-trace clock (0 when telemetry is off).
func (rt *reqTelemetry) now() float64 {
	if rt == nil {
		return 0
	}
	return rt.wt.Now()
}

// publish sends one SSE event to the decision's stream.
func (rt *reqTelemetry) publish(name string, data []byte) {
	if rt == nil || rt.stream == nil {
		return
	}
	rt.stream.publish(sseEvent{name: name, data: data})
}

// queueWaited records the span spent waiting for a worker slot;
// start is a wall-tracer timestamp taken before the wait.
func (rt *reqTelemetry) queueWaited(start float64) {
	if rt == nil {
		return
	}
	rt.wt.Emit("queue-wait", "request", obs.WallRowRequest, start, rt.wt.Now()-start)
}

// beginSearch opens the search span and arms the trial-span clock.
func (rt *reqTelemetry) beginSearch() {
	if rt == nil {
		return
	}
	rt.search = rt.wt.Begin("search", "request", obs.WallRowRequest)
	rt.last = rt.wt.Now()
}

// onProgress is the scaler's Progress hook: each milestone becomes an
// SSE event, and each executed trial becomes a wall-clock span covering
// the time since the previous milestone (the hook runs on the search's
// sequential decision loop, so the spans tile the search without gaps).
func (rt *reqTelemetry) onProgress(ev scaler.ProgressEvent) {
	now := rt.wt.Now()
	switch ev.Kind {
	case "profile", "trial":
		name := ev.Label
		if name == "" {
			name = ev.Kind
		}
		rt.wt.Emit(name, ev.Kind, obs.WallRowTrials, rt.last, now-rt.last,
			obs.A("trial", ev.Trial),
			obs.A("quality", ev.Quality),
			obs.A("verdict", ev.Verdict),
			obs.A("memoized", ev.Memoized),
		)
	}
	rt.last = now
	if rt.stream != nil {
		if data, err := json.Marshal(ev); err == nil {
			rt.publish(ev.Kind, data)
		}
	}
}

// closeTrace ends the open spans and renders the wall trace for the
// decision cache. Returns nil when telemetry is off.
func (rt *reqTelemetry) closeTrace() []byte {
	if rt == nil {
		return nil
	}
	rt.wt.End(rt.search)
	rt.wt.End(rt.req)
	var buf bytes.Buffer
	if err := rt.wt.WriteChromeTrace(&buf); err != nil {
		return nil
	}
	return buf.Bytes()
}

// done publishes the terminal success event. Call after the decision is
// stored, so a subscriber reacting to "done" can immediately fetch it.
func (rt *reqTelemetry) done(id string) {
	if rt == nil {
		return
	}
	data, err := json.Marshal(map[string]any{"decision_id": id, "cached": false})
	if err != nil {
		return
	}
	rt.publish("done", data)
}

// fail publishes the terminal error event so subscribers do not hang on
// a search that will never produce a decision.
func (rt *reqTelemetry) fail(err error) {
	if rt == nil {
		return
	}
	data, merr := json.Marshal(map[string]any{"error": err.Error()})
	if merr != nil {
		return
	}
	rt.publish("error", data)
}

// handleMetrics is GET /metrics: the shared obs registry in Prometheus
// text exposition format. /v1/metricsz keeps serving the same registry
// as CSV for the pre-existing tooling.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obs.Metrics().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleTrace is GET /v1/decisions/{id}/trace: the wall-clock Chrome
// trace recorded while the decision was computed. Cache hits and
// telemetry-off servers have no trace; both answer 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.obs.Metrics().Counter("service_requests", obs.L("endpoint", "trace")).Inc()
	id := r.PathValue("id")
	trace, ok := s.traceFor(id)
	if !ok {
		s.writeError(w, &notFoundError{what: "trace", name: id})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Decision-Id", id)
	w.Write(trace)
}

// handleEvents is GET /v1/decisions/{id}/events: live decision progress
// as server-sent events. The stream replays its full history first, so
// subscribing after (or during) the search still yields every trial
// event, then the terminal "done"/"error" event closes the response.
// Subscribing before the POST is the supported flow: compute the id
// with POST /v1/scale?fingerprint=1, subscribe, then POST for real.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.obs.Metrics().Counter("service_requests", obs.L("endpoint", "events")).Inc()
	id := r.PathValue("id")
	st := s.hub.get(id, true)
	if st == nil {
		s.writeError(w, fmt.Errorf("event stream capacity exhausted"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	history, live, done := st.subscribe()
	defer st.unsubscribe(live)
	for _, ev := range history {
		writeSSE(w, ev)
	}
	rc.Flush()
	if done {
		return
	}
	// A decision cached before this server recorded any events (hub at
	// capacity during its search, or a raced eviction) would otherwise
	// hang the subscriber: synthesize the terminal event directly.
	if len(history) == 0 {
		if _, ok := s.cached(id); ok {
			data, _ := json.Marshal(map[string]any{"decision_id": id, "cached": true})
			writeSSE(w, sseEvent{name: "done", data: data})
			rc.Flush()
			return
		}
	}
	for {
		select {
		case ev := <-live:
			writeSSE(w, ev)
			rc.Flush()
			if ev.terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in SSE wire framing.
func writeSSE(w io.Writer, ev sseEvent) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
}

// latencySummary condenses a latency histogram for /v1/healthz and the
// drain artifact: observation count plus p50/p99/max in milliseconds.
func latencySummary(h *obs.Histogram) map[string]any {
	_, cum := h.Buckets()
	count := 0
	if len(cum) > 0 {
		count = cum[len(cum)-1]
	}
	return map[string]any{
		"count":  count,
		"p50_ms": h.Quantile(0.5) * 1e3,
		"p99_ms": h.Quantile(0.99) * 1e3,
		"max_ms": h.Quantile(1) * 1e3,
	}
}

// isFingerprintOnly reports whether POST /v1/scale was invoked with
// ?fingerprint=1: validate and fingerprint the request but do not run
// the search. SSE clients use it to learn the decision id to subscribe
// to before submitting the real request. A query parameter (not a body
// field) keeps the strict v1 request schema untouched.
func isFingerprintOnly(r *http.Request) bool {
	v := r.URL.Query().Get("fingerprint")
	return v == "1" || v == "true"
}

// fingerprintResponse answers a fingerprint-only scale request.
func (s *Server) fingerprintResponse(w http.ResponseWriter, id string) {
	_, hit := s.cached(id)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Decision-Id", id)
	api.Encode(w, map[string]any{
		"schema":      api.Schema,
		"decision_id": id,
		"cached":      hit,
	})
}
