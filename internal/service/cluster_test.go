package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// clusterNode is one in-process prescalerd node bound to a real TCP
// port (the ring needs concrete addresses before New runs, so these
// tests reserve listeners first).
type clusterNode struct {
	addr string
	srv  *Server
	hs   *http.Server
	obs  *obs.Observer
}

func (n *clusterNode) url() string { return "http://" + n.addr }

func startCluster(t *testing.T, size int) []*clusterNode {
	t.Helper()
	return startClusterCfg(t, size, nil)
}

// startClusterCfg starts a cluster with a per-node Config hook (applied
// after the defaults, before New), for tests that need replication or
// persistence.
func startClusterCfg(t *testing.T, size int, configure func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, size)
	addrs := make([]string, size)
	listeners := make([]net.Listener, size)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		o := obs.New()
		cfg := Config{
			Workers:  2,
			Obs:      o,
			Workload: testWorkloads,
			Self:     addrs[i],
			Peers:    peers,
			// Membership stays static: these tests exercise the breaker
			// and proxy fallback paths, which must work during the window
			// before any probe verdict lands.
			DisableProber: true,
		}
		if configure != nil {
			configure(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(listeners[i])
		nodes[i] = &clusterNode{addr: addrs[i], srv: srv, hs: hs, obs: o}
		t.Cleanup(func() { hs.Close(); srv.Close() })
	}
	return nodes
}

// fingerprintFor asks a node for the decision id of a request body
// without searching.
func fingerprintFor(t *testing.T, node *clusterNode, body string) string {
	t.Helper()
	resp, err := http.Post(node.url()+"/v1/scale?fingerprint=1", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		DecisionID string `json:"decision_id"`
	}
	if err := json.Unmarshal(b, &out); err != nil || out.DecisionID == "" {
		t.Fatalf("fingerprint response: %s", b)
	}
	return out.DecisionID
}

// A two-node ring must agree on ownership, proxy /v1/scale by it, and
// answer with byte-identical bodies whichever node is hit.
func TestClusterProxiesByOwnership(t *testing.T) {
	nodes := startCluster(t, 2)
	reqBody := `{"benchmark":"veccombine","toq":0.9}`
	id := fingerprintFor(t, nodes[0], reqBody)

	if a, b := nodes[0].srv.view.Ring().Owner(id), nodes[1].srv.view.Ring().Owner(id); a != b {
		t.Fatalf("nodes disagree on owner: %q vs %q", a, b)
	}
	owner, other := nodes[0], nodes[1]
	if nodes[0].srv.view.Ring().Owner(id) != nodes[0].addr {
		owner, other = nodes[1], nodes[0]
	}

	// Hitting the owner computes locally.
	resp, err := http.Post(owner.url()+"/v1/scale", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	ownerBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("owner: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// Hitting the non-owner proxies to the owner: X-Cache remote, the
	// owner's own state rides in X-Cache-Origin, the body is identical.
	resp, err = http.Post(other.url()+"/v1/scale", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	remoteBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner: status %d: %s", resp.StatusCode, remoteBody)
	}
	if c := resp.Header.Get("X-Cache"); c != "remote" {
		t.Errorf("non-owner X-Cache = %q, want remote", c)
	}
	if oc := resp.Header.Get("X-Cache-Origin"); oc != "hit" {
		t.Errorf("X-Cache-Origin = %q, want hit (owner had it cached)", oc)
	}
	if did := resp.Header.Get("X-Decision-Id"); did != id {
		t.Errorf("X-Decision-Id = %q, want %q", did, id)
	}
	if !bytes.Equal(ownerBody, remoteBody) {
		t.Error("proxied body differs from the owner's — determinism invariant broken")
	}
	if v := other.obs.Metrics().Counter("service_proxy", obs.L("result", "ok")).Value(); v != 1 {
		t.Errorf("proxy ok counter = %v, want 1", v)
	}
	// Sharding, not replication: the non-owner must not have stored the
	// proxied body in its own LRU.
	if _, ok := other.srv.cached(id); ok {
		t.Error("non-owner cached a proxied decision; the shard should live on the owner only")
	}

	// A request already forwarded once is answered locally, never
	// re-proxied (loop prevention).
	req, err := http.NewRequest("POST", other.url()+"/v1/scale", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(headerForwarded, "test")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fwdBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if c := resp.Header.Get("X-Cache"); c != "miss" {
		t.Errorf("forwarded request X-Cache = %q, want miss (local compute)", c)
	}
	if !bytes.Equal(fwdBody, ownerBody) {
		t.Error("locally computed body differs from the owner's")
	}
}

// When the owner is dead, the non-owner must fall back to local compute
// and still answer 200 with the correct body.
func TestClusterFallbackOnPeerDeath(t *testing.T) {
	nodes := startCluster(t, 2)
	// Find a request owned by node 1, then kill node 1.
	var reqBody string
	for i := 0; i < 40; i++ {
		body := fmt.Sprintf(`{"benchmark":"veccombine","toq":0.5%02d}`, i)
		id := fingerprintFor(t, nodes[0], body)
		if nodes[0].srv.view.Ring().Owner(id) == nodes[1].addr {
			reqBody = body
			break
		}
	}
	if reqBody == "" {
		t.Fatal("no fingerprint owned by node 1 in 40 tries")
	}
	nodes[1].hs.Close()

	resp, err := http.Post(nodes[0].url()+"/v1/scale", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback: status %d: %s", resp.StatusCode, body)
	}
	if c := resp.Header.Get("X-Cache"); c != "miss" {
		t.Errorf("fallback X-Cache = %q, want miss (computed locally)", c)
	}
	if v := nodes[0].obs.Metrics().Counter("service_proxy", obs.L("result", "fallback")).Value(); v != 1 {
		t.Errorf("proxy fallback counter = %v, want 1", v)
	}
	// The decision landed in the survivor's cache: a repeat is a local
	// hit without another proxy attempt.
	resp, err = http.Post(nodes[0].url()+"/v1/scale", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if c := resp.Header.Get("X-Cache"); c != "hit" {
		t.Errorf("repeat after fallback X-Cache = %q, want hit", c)
	}
	if !bytes.Equal(body, body2) {
		t.Error("fallback repeat body differs")
	}
}
