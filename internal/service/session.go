package service

// Sessions: the long-lived half of the v1 API. A session binds a
// (system, benchmark, TOQ) triple to a decision that adapts online.
// POST /v1/sessions runs the ordinary cold search (the same bytes
// /v1/scale would produce land in the decision cache); each
// POST /v1/sessions/{id}/evaluate then executes one input batch under
// the current decision and feeds a drift detector — running
// range/variance statistics per bound input object, compared against
// the statistics the current generation was scaled for. A normalized
// shift beyond the session's threshold, or an observed TOQ violation,
// triggers a warm-started re-search (scaler.Seed): seeded from the
// previous generation's per-object configs, re-validating only objects
// whose error contribution moved, and emitting a new decision
// generation with a diff explaining what changed and why.
//
// Drift is checked before TOQ so the reported reason is stable: a batch
// whose distribution moved usually breaks TOQ too, and "drift" is the
// actionable signal. Evaluates on one session serialize on the
// session's own mutex; different sessions proceed in parallel, with
// re-searches running under the same admission controller as /v1/scale.
//
// Sessions persist: every generation change appends a full snapshot
// (identified by the "sess"-prefixed id, disjoint from the 16-hex-char
// decision fingerprints) to the PR-9 decision journal, and restart
// restores unexpired sessions last-write-wins.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/precision"
	"repro/internal/prog"
	"repro/internal/scaler"
)

const (
	// sessionIDPrefix distinguishes session journal records from decision
	// fingerprints. Ids are sessionIDPrefix + 12 hex digits = 16 bytes,
	// satisfying the journal's fixed-width id format; fingerprints are
	// pure hex and can never start with 's'.
	sessionIDPrefix       = "sess"
	defaultSessionTTL     = time.Hour
	defaultMaxSessions    = 64
	defaultDriftThreshold = 0.25
)

// session is one live session. Its mutex serializes evaluates (and
// guards every mutable field, including lastUsed); the server's smu
// orders strictly before it.
type session struct {
	mu sync.Mutex

	id        string
	bench     string // workload-resolver name, for snapshots
	sysName   string // system preset name, for snapshots
	w         *prog.Workload
	baseFw    *core.Framework // shared per-system base; searches clone it
	runFw     *core.Framework // private clone batches execute on
	spec      *fault.Spec
	faults    string // original wire spec, for snapshots
	faultSeed uint64
	retries   int
	toq       float64
	threshold float64
	ttl       time.Duration
	cache     *prog.EvalCache // nil under fault injection

	set        prog.InputSet
	generation int
	reason     string // "initial", "drift", or "toq"
	trials     int    // trial count of the search behind this generation
	cfg        *prog.Config
	body       []byte // current generation's canonical decision body

	objErr   map[string]float64            // per-object error contribution the seed carries
	refStats map[string]*prog.RunningStats // input stats the generation was scaled for
	curStats map[string]*prog.RunningStats // accumulated stats of evaluated batches
	refs     map[prog.InputSet]*prog.Result

	lastUsed time.Time
}

// handleSessionCreate is POST /v1/sessions: validate like /v1/scale,
// run the cold search (stored under its fingerprint, so the decision
// bytes are identical to a plain scale request), and bind the session
// state around it.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	m := s.obs.Metrics()
	m.Counter("service_requests", obs.L("endpoint", "sessions")).Inc()
	req, err := api.DecodeSessionRequest(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	job, err := s.prepare(&api.ScaleRequest{
		Schema: api.Schema, Benchmark: req.Benchmark, System: req.System,
		TOQ: req.TOQ, InputSet: req.InputSet,
		Faults: req.Faults, FaultSeed: req.FaultSeed, Retries: req.Retries,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx := r.Context()
	if err := s.admit.Acquire(ctx, clientID(r), s.p99Search); err != nil {
		s.writeError(w, err)
		return
	}
	searchStart := time.Now()
	sp, body, err := s.runScaled(ctx, job, nil, nil)
	s.admit.Release()
	s.searchSeconds.Observe(time.Since(searchStart).Seconds())
	if err != nil {
		m.Counter("service_searches", obs.L("result", resultLabel(err))).Inc()
		s.writeError(w, err)
		return
	}
	m.Counter("service_searches", obs.L("result", "ok")).Inc()
	s.store(job.id, body, nil)

	sess, err := s.newSession(req, job, sp, body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.insertSession(sess)
	// Past insertSession the session is reachable by other requests:
	// snapshot and render under its mutex.
	sess.mu.Lock()
	s.journalSessionLocked(sess)
	gen, _ := json.Marshal(sess.generationDocLocked(nil))
	doc := sess.documentLocked()
	sess.mu.Unlock()
	if gen != nil {
		s.publishSession(sess.id, "generation", gen)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Decision-Id", job.id)
	w.WriteHeader(http.StatusCreated)
	api.Encode(w, doc)
}

// newSession builds the session state around a completed cold search.
func (s *Server) newSession(req *api.SessionRequest, job *scaleJob, sp *core.ScaledProgram, body []byte) (*session, error) {
	ttl := s.sessTTL
	if req.TTLSeconds > 0 {
		ttl = time.Duration(req.TTLSeconds) * time.Second
	}
	threshold := req.DriftThreshold
	if threshold == 0 {
		threshold = defaultDriftThreshold
	}
	sysName := req.System
	if sysName == "" {
		sysName = "system1"
	}
	runFw := job.fw.Clone()
	runFw.System().Faults = job.spec
	sess := &session{
		id:        s.nextSessionID(),
		bench:     req.Benchmark,
		sysName:   sysName,
		w:         job.w,
		baseFw:    job.fw,
		runFw:     runFw,
		spec:      job.spec,
		faults:    req.Faults,
		faultSeed: req.FaultSeed,
		retries:   job.opts.Retries,
		toq:       job.opts.TOQ,
		threshold: threshold,
		ttl:       ttl,
		cache:     job.cache,

		set:        job.opts.InputSet,
		generation: 1,
		reason:     "initial",
		trials:     sp.Search.Trials,
		cfg:        sp.Config,
		body:       body,

		curStats: map[string]*prog.RunningStats{},
		refs:     map[prog.InputSet]*prog.Result{},
		lastUsed: s.now(),
	}
	ref, err := sess.reference(sess.set)
	if err != nil {
		return nil, err
	}
	sess.objErr = prog.ObjectErrors(sess.w, ref.Ops, ref, sp.Search.Final)
	sess.refStats = inputStats(sess.w, sess.set)
	return sess, nil
}

// handleSessionGet is GET /v1/sessions/{id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.obs.Metrics().Counter("service_requests", obs.L("endpoint", "sessions")).Inc()
	sess := s.session(r.PathValue("id"))
	if sess == nil {
		s.writeError(w, &notFoundError{what: "session", name: r.PathValue("id")})
		return
	}
	sess.mu.Lock()
	doc := sess.documentLocked()
	sess.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	api.Encode(w, doc)
}

// handleSessionDelete is DELETE /v1/sessions/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.obs.Metrics().Counter("service_requests", obs.L("endpoint", "sessions")).Inc()
	id := r.PathValue("id")
	s.smu.Lock()
	_, ok := s.sessions[id]
	if ok {
		s.dropSessionLocked(id, "deleted")
	}
	s.smu.Unlock()
	if !ok {
		s.writeError(w, &notFoundError{what: "session", name: id})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionEvaluate is POST /v1/sessions/{id}/evaluate: execute one
// input batch under the session's current decision, report achieved
// quality and drift, and — when drift or a TOQ violation demands it —
// re-scale warm and advance the generation.
func (s *Server) handleSessionEvaluate(w http.ResponseWriter, r *http.Request) {
	m := s.obs.Metrics()
	m.Counter("service_requests", obs.L("endpoint", "evaluate")).Inc()
	id := r.PathValue("id")
	sess := s.session(id)
	if sess == nil {
		s.writeError(w, &notFoundError{what: "session", name: id})
		return
	}
	req, err := api.DecodeEvaluateRequest(r.Body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	set := sess.set
	if req.InputSet != "" {
		if set, err = prog.ParseInputSet(req.InputSet); err != nil {
			s.writeError(w, fmt.Errorf("%w: %v", api.ErrBadRequest, err))
			return
		}
	}
	resp, err := s.evaluateLocked(r.Context(), sess, set)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sess.lastUsed = s.now()
	if data, merr := json.Marshal(resp); merr == nil {
		s.publishSession(sess.id, "evaluate", data)
	}
	w.Header().Set("Content-Type", "application/json")
	api.Encode(w, resp)
}

// evaluateLocked runs one batch under the current generation. Caller
// holds sess.mu.
func (s *Server) evaluateLocked(ctx context.Context, sess *session, set prog.InputSet) (*api.EvaluateResponse, error) {
	m := s.obs.Metrics()
	// Fold the batch into the running statistics and keep the batch's own
	// stats: a re-scale rebases the reference onto the batch it was
	// triggered by.
	batch := map[string]*prog.RunningStats{}
	for name, data := range sess.w.MakeInputs(set) {
		st := &prog.RunningStats{}
		st.ObserveSlice(data)
		batch[name] = st
		cur := sess.curStats[name]
		if cur == nil {
			cur = &prog.RunningStats{}
			sess.curStats[name] = cur
		}
		cur.ObserveSlice(data)
	}
	ref, err := sess.reference(set)
	if err != nil {
		return nil, err
	}
	res, err := sess.runOnce(set, sess.cfg)
	if err != nil {
		return nil, err
	}
	quality := prog.Quality(ref, res)

	names := make([]string, 0, len(sess.curStats))
	for name := range sess.curStats {
		names = append(names, name)
	}
	sort.Strings(names)
	var drift []api.ObjectDrift
	drifted := false
	for _, name := range names {
		shift := prog.NormalizedShift(sess.refStats[name], sess.curStats[name])
		d := shift > sess.threshold
		drifted = drifted || d
		drift = append(drift, api.ObjectDrift{Object: name, Shift: shift, Drifted: d})
	}

	resp := &api.EvaluateResponse{
		Schema:     api.Schema,
		Session:    sess.id,
		Generation: sess.generation,
		InputSet:   set.String(),
		Quality:    quality,
		TOQ:        sess.toq,
		TOQMet:     quality >= sess.toq,
		SimMs:      res.Total,
		Drift:      drift,
	}
	reason := ""
	switch {
	case drifted:
		reason = "drift"
	case quality < sess.toq:
		reason = "toq"
	}
	if reason == "" {
		return resp, nil
	}
	resp.RescaleReason = reason
	if err := s.rescaleLocked(ctx, sess, set, reason, batch, ref); err != nil {
		// The previous generation stays in force; the client learns the
		// re-scale was attempted and failed and can retry with the next
		// batch (drift persists, so the trigger fires again).
		m.Counter("service_rescale_failures").Inc()
		if s.logger != nil {
			s.logger.Warn("session re-scale failed",
				"session", sess.id, "reason", reason, "err", err.Error())
		}
		resp.RescaleFailed = true
		return resp, nil
	}
	resp.Rescaled = true
	resp.Generation = sess.generation
	return resp, nil
}

// rescaleLocked runs the warm-started re-search and advances the
// generation. Caller holds sess.mu; the previous generation stays
// untouched unless the search succeeds.
func (s *Server) rescaleLocked(ctx context.Context, sess *session, set prog.InputSet, reason string, batch map[string]*prog.RunningStats, ref *prog.Result) error {
	m := s.obs.Metrics()
	m.Counter("service_rescale", obs.L("reason", reason)).Inc()
	opts, err := scaler.Options{
		TOQ: sess.toq, InputSet: set, Retries: sess.retries,
		DisableEvalCache: true,
	}.Normalize()
	if err != nil {
		return err
	}
	job := &scaleJob{fw: sess.baseFw, w: sess.w, opts: opts, spec: sess.spec, cache: sess.cache}
	seed := &scaler.Seed{Config: sess.cfg, ObjErr: sess.objErr}
	if err := s.admit.Acquire(ctx, "session/"+sess.id, s.p99Search); err != nil {
		return err
	}
	start := time.Now()
	sp, body, err := s.runScaled(ctx, job, nil, seed)
	s.admit.Release()
	s.searchSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		return err
	}
	diff := generationDiff(sess.w, sess.cfg, sp.Config, sp.Search.Warm)
	sess.generation++
	sess.reason = reason
	sess.set = set
	sess.cfg = sp.Config
	sess.body = body
	sess.trials = sp.Search.Trials
	sess.objErr = prog.ObjectErrors(sess.w, ref.Ops, ref, sp.Search.Final)
	sess.refStats = batch
	sess.curStats = map[string]*prog.RunningStats{}
	if data, merr := json.Marshal(sess.generationDocLocked(diff)); merr == nil {
		s.publishSession(sess.id, "generation", data)
	}
	s.journalSessionLocked(sess)
	return nil
}

// generationDiff explains a generation transition: one line per object,
// labeled by what the warm search did with it.
func generationDiff(w *prog.Workload, old, cur *prog.Config, warm *scaler.WarmReport) []api.GenerationChange {
	why := map[string]string{}
	if warm != nil {
		for _, o := range warm.Kept {
			why[o] = "kept"
		}
		for _, o := range warm.Moved {
			why[o] = "moved"
		}
		for _, o := range warm.Repaired {
			why[o] = "repaired"
		}
	}
	diff := make([]api.GenerationChange, 0, len(w.Objects))
	for _, obj := range w.Objects {
		from := old.Objects[obj.Name].Target
		to := cur.Objects[obj.Name].Target
		wy := why[obj.Name]
		if wy == "" {
			if from == to {
				wy = "kept"
			} else {
				wy = "moved"
			}
		}
		diff = append(diff, api.GenerationChange{
			Object: obj.Name, From: from.String(), To: to.String(), Why: wy,
		})
	}
	return diff
}

// handleSessionEvents is GET /v1/sessions/{id}/events: the session's
// lifecycle over SSE — "generation" (one per decision generation,
// including the initial one), "evaluate" (one per batch), and a
// terminal "done" when the session is deleted, evicted, or expired.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	s.obs.Metrics().Counter("service_requests", obs.L("endpoint", "session_events")).Inc()
	id := r.PathValue("id")
	if s.session(id) == nil {
		s.writeError(w, &notFoundError{what: "session", name: id})
		return
	}
	st := s.hub.get(id, true)
	if st == nil {
		s.writeError(w, fmt.Errorf("event stream capacity exhausted"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	history, live, done := st.subscribe()
	defer st.unsubscribe(live)
	for _, ev := range history {
		writeSSE(w, ev)
	}
	rc.Flush()
	if done {
		return
	}
	for {
		select {
		case ev := <-live:
			writeSSE(w, ev)
			rc.Flush()
			if ev.terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// session looks up a live session, lazily reclaiming it when its idle
// TTL has passed.
func (s *Server) session(id string) *session {
	s.smu.Lock()
	defer s.smu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil
	}
	sess.mu.Lock()
	expired := s.now().Sub(sess.lastUsed) > sess.ttl
	sess.mu.Unlock()
	if expired {
		s.dropSessionLocked(id, "expired")
		return nil
	}
	return sess
}

// insertSession registers a new session, evicting the least recently
// used beyond capacity.
func (s *Server) insertSession(sess *session) {
	s.smu.Lock()
	defer s.smu.Unlock()
	s.sessions[sess.id] = sess
	for len(s.sessions) > s.maxSessions {
		victim := ""
		var oldest time.Time
		for id, other := range s.sessions {
			if id == sess.id {
				continue
			}
			other.mu.Lock()
			lu := other.lastUsed
			other.mu.Unlock()
			if victim == "" || lu.Before(oldest) {
				victim, oldest = id, lu
			}
		}
		if victim == "" {
			break
		}
		s.dropSessionLocked(victim, "evicted")
	}
	s.sessGauge.Set(float64(len(s.sessions)))
}

// dropSessionLocked removes a session (caller holds smu), closing its
// event stream so subscribers see a terminal "done" with the reason.
func (s *Server) dropSessionLocked(id, why string) {
	delete(s.sessions, id)
	s.obs.Metrics().Counter("service_session_drops", obs.L("reason", why)).Inc()
	s.sessGauge.Set(float64(len(s.sessions)))
	if data, err := json.Marshal(map[string]any{"session": id, "reason": why}); err == nil {
		if st := s.hub.get(id, false); st != nil {
			st.publish(sseEvent{name: "done", data: data})
		}
	}
	s.hub.drop(id)
}

// nextSessionID mints the next session id: the prefix plus 12 hex
// digits of a process-local counter, 16 bytes total to satisfy the
// journal's fixed-width id format.
func (s *Server) nextSessionID() string {
	s.smu.Lock()
	defer s.smu.Unlock()
	s.sessSeq++
	return fmt.Sprintf("%s%012x", sessionIDPrefix, s.sessSeq)
}

// publishSession emits one SSE event on a session's stream.
func (s *Server) publishSession(id, name string, data []byte) {
	if st := s.hub.get(id, true); st != nil {
		st.publish(sseEvent{name: name, data: data})
	}
}

// runOnce executes the workload once on the session's private runtime
// under the given config (nil = full precision), fault-guarded like
// every other runtime entry point.
func (sess *session) runOnce(set prog.InputSet, cfg *prog.Config) (*prog.Result, error) {
	var res *prog.Result
	err := fault.Guard(func() error {
		r, e := prog.RunWithCache(sess.runFw.System(), sess.w, set, cfg, sess.cache)
		if e != nil {
			return e
		}
		res = r
		return nil
	})
	return res, err
}

// reference returns (memoizing per input set) the full-precision run
// that quality and error attribution compare against.
func (sess *session) reference(set prog.InputSet) (*prog.Result, error) {
	if ref, ok := sess.refs[set]; ok {
		return ref, nil
	}
	ref, err := sess.runOnce(set, nil)
	if err != nil {
		return nil, err
	}
	sess.refs[set] = ref
	return ref, nil
}

// inputStats computes the running statistics of one generated batch,
// keyed by input object.
func inputStats(w *prog.Workload, set prog.InputSet) map[string]*prog.RunningStats {
	out := map[string]*prog.RunningStats{}
	for name, data := range w.MakeInputs(set) {
		st := &prog.RunningStats{}
		st.ObserveSlice(data)
		out[name] = st
	}
	return out
}

// documentLocked renders the api.Session document. Caller holds sess.mu
// (or is the session's only holder).
func (sess *session) documentLocked() *api.Session {
	var d api.Decision
	json.Unmarshal(sess.body, &d)
	return &api.Session{
		Schema:         api.Schema,
		ID:             sess.id,
		Benchmark:      sess.bench,
		System:         sess.sysName,
		TOQ:            sess.toq,
		InputSet:       sess.set.String(),
		Generation:     sess.generation,
		TTLSeconds:     int(sess.ttl / time.Second),
		DriftThreshold: sess.threshold,
		Decision:       &d,
	}
}

// generationDocLocked renders the api.Generation document for the
// current generation. Caller holds sess.mu (or is the only holder).
func (sess *session) generationDocLocked(diff []api.GenerationChange) *api.Generation {
	var d api.Decision
	json.Unmarshal(sess.body, &d)
	return &api.Generation{
		Schema:     api.Schema,
		Session:    sess.id,
		Generation: sess.generation,
		Reason:     sess.reason,
		InputSet:   sess.set.String(),
		Warm:       sess.reason != "initial",
		Trials:     sess.trials,
		Diff:       diff,
		Decision:   &d,
	}
}

// sessionSnapshot is the journal record of one session: everything
// needed to rebuild it after a restart. The decision body rides along
// verbatim; the config is stored as integer precision codes (the wire
// strings are for humans, the codes are what precision.Type holds).
type sessionSnapshot struct {
	ID             string                        `json:"id"`
	Benchmark      string                        `json:"benchmark"`
	System         string                        `json:"system"`
	TOQ            float64                       `json:"toq"`
	InputSet       string                        `json:"input_set"`
	Faults         string                        `json:"faults,omitempty"`
	FaultSeed      uint64                        `json:"fault_seed,omitempty"`
	Retries        int                           `json:"retries"`
	TTLSeconds     int                           `json:"ttl_seconds"`
	DriftThreshold float64                       `json:"drift_threshold"`
	Generation     int                           `json:"generation"`
	Reason         string                        `json:"reason"`
	Trials         int                           `json:"trials"`
	LastUsedUnix   int64                         `json:"last_used_unix"`
	Objects        map[string]snapObject         `json:"objects"`
	ObjErr         map[string]float64            `json:"obj_err,omitempty"`
	RefStats       map[string]*prog.RunningStats `json:"ref_stats,omitempty"`
	CurStats       map[string]*prog.RunningStats `json:"cur_stats,omitempty"`
	Body           json.RawMessage               `json:"body"`
}

type snapObject struct {
	Target   int        `json:"target"`
	InKernel bool       `json:"in_kernel,omitempty"`
	Plans    []snapPlan `json:"plans,omitempty"`
}

type snapPlan struct {
	Host    int `json:"host"`
	Threads int `json:"threads,omitempty"`
	Mid     int `json:"mid"`
}

// snapshotLocked captures the session for the journal. Caller holds
// sess.mu (or is the only holder).
func (sess *session) snapshotLocked() *sessionSnapshot {
	objs := map[string]snapObject{}
	for name, oc := range sess.cfg.Objects {
		so := snapObject{Target: int(oc.Target), InKernel: oc.InKernel}
		for _, p := range oc.Plans {
			so.Plans = append(so.Plans, snapPlan{Host: int(p.Host), Threads: p.Threads, Mid: int(p.Mid)})
		}
		objs[name] = so
	}
	return &sessionSnapshot{
		ID:             sess.id,
		Benchmark:      sess.bench,
		System:         sess.sysName,
		TOQ:            sess.toq,
		InputSet:       sess.set.String(),
		Faults:         sess.faults,
		FaultSeed:      sess.faultSeed,
		Retries:        sess.retries,
		TTLSeconds:     int(sess.ttl / time.Second),
		DriftThreshold: sess.threshold,
		Generation:     sess.generation,
		Reason:         sess.reason,
		Trials:         sess.trials,
		LastUsedUnix:   sess.lastUsed.Unix(),
		Objects:        objs,
		ObjErr:         sess.objErr,
		RefStats:       sess.refStats,
		CurStats:       sess.curStats,
		Body:           json.RawMessage(sess.body),
	}
}

// journalSessionLocked appends the session's snapshot to the decision
// journal. Caller holds sess.mu (or is the only holder).
func (s *Server) journalSessionLocked(sess *session) {
	if s.journal == nil {
		return
	}
	data, err := json.Marshal(sess.snapshotLocked())
	if err != nil {
		return
	}
	s.journal.append(sess.id, data)
}

// sessionSnapshots captures every open session for journal compaction.
func (s *Server) sessionSnapshots() []persistRecord {
	s.smu.Lock()
	defer s.smu.Unlock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	recs := make([]persistRecord, 0, len(ids))
	for _, id := range ids {
		sess := s.sessions[id]
		sess.mu.Lock()
		data, err := json.Marshal(sess.snapshotLocked())
		sess.mu.Unlock()
		if err == nil {
			recs = append(recs, persistRecord{id: id, body: data})
		}
	}
	return recs
}

// restoreSession rebuilds one session from its journal snapshot.
// Invalid or expired snapshots are skipped — restore is best-effort,
// like the rest of the journal.
func (s *Server) restoreSession(rec persistRecord) {
	skipped := func(why string) {
		s.obs.Metrics().Counter("service_session_restore", obs.L("result", why)).Inc()
		if s.logger != nil {
			s.logger.Warn("session restore skipped", "id", rec.id, "why", why)
		}
	}
	var snap sessionSnapshot
	if err := json.Unmarshal(rec.body, &snap); err != nil || snap.ID != rec.id {
		skipped("corrupt")
		return
	}
	ttl := time.Duration(snap.TTLSeconds) * time.Second
	if ttl <= 0 {
		ttl = s.sessTTL
	}
	lastUsed := time.Unix(snap.LastUsedUnix, 0)
	if s.now().Sub(lastUsed) > ttl {
		skipped("expired")
		return
	}
	w := s.workload(snap.Benchmark)
	if w == nil {
		skipped("unknown_benchmark")
		return
	}
	set, err := prog.ParseInputSet(snap.InputSet)
	if err != nil {
		skipped("bad_input_set")
		return
	}
	fw, err := s.framework(snap.System)
	if err != nil {
		skipped("unknown_system")
		return
	}
	spec, err := fault.ParseSeeded(snap.Faults, snap.FaultSeed)
	if err != nil {
		skipped("bad_faults")
		return
	}
	cfg := &prog.Config{Objects: map[string]prog.ObjectConfig{}}
	for name, so := range snap.Objects {
		oc := prog.ObjectConfig{Target: precision.Type(so.Target), InKernel: so.InKernel}
		if !oc.Target.Valid() {
			skipped("bad_config")
			return
		}
		for _, p := range so.Plans {
			oc.Plans = append(oc.Plans, convert.Plan{
				Host: convert.Method(p.Host), Threads: p.Threads, Mid: precision.Type(p.Mid),
			})
		}
		cfg.Objects[name] = oc
	}
	runFw := fw.Clone()
	runFw.System().Faults = spec
	sess := &session{
		id:        snap.ID,
		bench:     snap.Benchmark,
		sysName:   snap.System,
		w:         w,
		baseFw:    fw,
		runFw:     runFw,
		spec:      spec,
		faults:    snap.Faults,
		faultSeed: snap.FaultSeed,
		retries:   snap.Retries,
		toq:       snap.TOQ,
		threshold: snap.DriftThreshold,
		ttl:       ttl,

		set:        set,
		generation: snap.Generation,
		reason:     snap.Reason,
		trials:     snap.Trials,
		cfg:        cfg,
		body:       []byte(snap.Body),

		objErr:   snap.ObjErr,
		refStats: snap.RefStats,
		curStats: snap.CurStats,
		refs:     map[prog.InputSet]*prog.Result{},
		lastUsed: lastUsed,
	}
	if spec == nil {
		sess.cache = s.evalCache(snap.System, w.Name)
	}
	if sess.threshold == 0 {
		sess.threshold = defaultDriftThreshold
	}
	if sess.refStats == nil {
		sess.refStats = map[string]*prog.RunningStats{}
	}
	if sess.curStats == nil {
		sess.curStats = map[string]*prog.RunningStats{}
	}
	if seq, err := strconv.ParseUint(snap.ID[len(sessionIDPrefix):], 16, 64); err == nil && seq > s.sessSeq {
		s.sessSeq = seq
	}
	s.insertSession(sess)
	s.obs.Metrics().Counter("service_session_restore", obs.L("result", "ok")).Inc()
}
