package service

import (
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Cluster request headers. Forwarded marks a proxied request so
// ownership routing never loops (a forwarded request is always answered
// locally, even when the receiving node's ring disagrees about
// ownership — the bodies are byte-identical either way). ClientID keys
// the fair queue; DeadlineMs carries the client's latency budget for
// deadline-aware shedding; CacheOrigin reports the owner node's own
// X-Cache state on a proxied response.
const (
	headerForwarded   = "X-Prescaler-Forwarded"
	headerClientID    = "X-Client-Id"
	headerDeadline    = "X-Deadline-Ms"
	headerCacheOrigin = "X-Cache-Origin"
)

// defaultProxyTimeout bounds one proxied scale request end to end. It
// must comfortably exceed a worst-case search plus the owner's queue
// wait; a peer that cannot answer within it is treated as dead and the
// request falls back to local compute.
const defaultProxyTimeout = 2 * time.Minute

// proxyScale forwards a scale request to the fingerprint's owner node
// and relays the answer. It reports whether the response has been
// written: false means the owner is unreachable (connection failure or
// 5xx) and the caller should fall back to computing locally — the
// fallback is correct, not merely available, because the body is a pure
// function of the fingerprint.
func (s *Server) proxyScale(w http.ResponseWriter, r *http.Request, req *api.ScaleRequest, id, owner string) bool {
	m := s.obs.Metrics()
	var body strings.Builder
	if err := api.Encode(&body, req); err != nil {
		return false
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://"+owner+"/v1/scale", strings.NewReader(body.String()))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(headerForwarded, s.self)
	for _, h := range []string{"X-Request-Id", headerClientID, headerDeadline} {
		if v := r.Header.Get(h); v != "" {
			preq.Header.Set(h, v)
		}
	}
	resp, err := s.proxy.Do(preq)
	if err != nil {
		m.Counter("service_proxy", obs.L("result", "fallback")).Inc()
		if s.logger != nil {
			s.logger.Warn("proxy to owner failed, computing locally",
				"owner", owner, "decision_id", id, "err", err.Error())
		}
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, resp.Body)
		m.Counter("service_proxy", obs.L("result", "fallback")).Inc()
		if s.logger != nil {
			s.logger.Warn("owner answered 5xx, computing locally",
				"owner", owner, "decision_id", id, "status", resp.StatusCode)
		}
		return false
	}

	h := w.Header()
	h.Set("Content-Type", "application/json")
	if did := resp.Header.Get("X-Decision-Id"); did != "" {
		h.Set("X-Decision-Id", did)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		h.Set("Retry-After", ra)
	}
	if resp.StatusCode == http.StatusOK {
		// The body came from the owner: our cache state is "remote", the
		// owner's own state (hit / miss / coalesced) rides along so load
		// tests can still count cluster-wide search work.
		if oc := resp.Header.Get("X-Cache"); oc != "" {
			h.Set(headerCacheOrigin, oc)
		}
		h.Set("X-Cache", "remote")
		m.Counter("service_cache", obs.L("result", "remote")).Inc()
		m.Counter("service_proxy", obs.L("result", "ok")).Inc()
	} else {
		m.Counter("service_proxy", obs.L("result", "relay_error")).Inc()
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
