package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Cluster request headers. Forwarded marks a proxied request so
// ownership routing never loops (a forwarded request is always answered
// locally, even when the receiving node's ring disagrees about
// ownership — the bodies are byte-identical either way). ClientID keys
// the fair queue; DeadlineMs carries the client's latency budget for
// deadline-aware shedding; CacheOrigin reports the owner node's own
// X-Cache state on a proxied response; ClusterRoute tells the client
// which replica slot answered ("primary", "replica-<i>", or "fallback"
// when every replica was unreachable and the receiving node computed
// locally) so load tests can count failovers.
const (
	headerForwarded    = "X-Prescaler-Forwarded"
	headerClientID     = "X-Client-Id"
	headerDeadline     = "X-Deadline-Ms"
	headerCacheOrigin  = "X-Cache-Origin"
	headerClusterRoute = "X-Cluster-Route"
)

// defaultProxyTimeout is the outer safety bound on one proxied attempt
// at the HTTP-client level. The effective bound is the much shorter
// per-attempt context timeout below; this only catches pathological
// response-body stalls past the headers.
const defaultProxyTimeout = 2 * time.Minute

// defaultProxyAttemptTimeout bounds one proxy attempt end to end. A
// dead peer fails at connect within milliseconds; this bound is for the
// worse case of a hung peer, and is short enough that walking the whole
// replica list and falling back to local compute still beats the old
// flat 2-minute wait by an order of magnitude.
const defaultProxyAttemptTimeout = 15 * time.Second

// routeLabel names the replica slot that answered.
func routeLabel(i int) string {
	if i == 0 {
		return "primary"
	}
	return fmt.Sprintf("replica-%d", i)
}

// breakerFor returns the circuit breaker guarding a peer (nil for self
// or unknown addresses).
func (s *Server) breakerFor(peer string) *breaker {
	return s.breakers[peer]
}

// proxyScale forwards a scale request along the fingerprint's replica
// list — primary first — and relays the first answer. owners is the
// ring-ordered replica set; entries equal to self and entries whose
// circuit breaker is open are skipped, and each attempt runs under a
// short per-attempt timeout, so a dead primary costs milliseconds
// before the next replica (which was warmed when the decision was
// computed) answers. It reports whether the response has been written:
// false means every replica was unreachable and the caller should fall
// back to computing locally — the fallback is correct, not merely
// available, because the body is a pure function of the fingerprint.
func (s *Server) proxyScale(w http.ResponseWriter, r *http.Request, req *api.ScaleRequest, id string, owners []string) bool {
	m := s.obs.Metrics()
	var body strings.Builder
	if err := api.Encode(&body, req); err != nil {
		// An unencodable request should be impossible (it just decoded),
		// but silently computing locally would hide the bug: count and log.
		m.Counter("service_proxy", obs.L("result", "encode_error")).Inc()
		if s.logger != nil {
			s.logger.Warn("proxy request encode failed, computing locally",
				"decision_id", id, "err", err.Error())
		}
		return false
	}
	for i, owner := range owners {
		if owner == s.self {
			continue
		}
		br := s.breakerFor(owner)
		if br != nil && !br.Allow() {
			m.Counter("service_proxy", obs.L("result", "breaker_open")).Inc()
			continue
		}
		switch s.proxyAttempt(w, r, body.String(), id, owner, i, br) {
		case proxyOK:
			return true
		case proxyClientGone:
			// The client vanished mid-proxy; nothing left to answer.
			s.writeError(w, ctxCause(r.Context()))
			return true
		}
		// proxyFailed: try the next replica.
	}
	return false
}

// proxyAttempt outcome.
type proxyOutcome int

const (
	proxyOK proxyOutcome = iota
	proxyFailed
	proxyClientGone
)

// proxyAttempt issues one proxied scale request to one replica and, on
// success, relays its answer. Failures feed the replica's breaker
// unless the true cause is our own client disconnecting.
func (s *Server) proxyAttempt(w http.ResponseWriter, r *http.Request, body, id, owner string, slot int, br *breaker) proxyOutcome {
	m := s.obs.Metrics()
	ctx, cancel := context.WithTimeout(r.Context(), s.proxyAttemptTimeout)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/v1/scale", strings.NewReader(body))
	if err != nil {
		m.Counter("service_proxy", obs.L("result", "fallback")).Inc()
		return proxyFailed
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(headerForwarded, s.self)
	for _, h := range []string{"X-Request-Id", headerClientID, headerDeadline} {
		if v := r.Header.Get(h); v != "" {
			preq.Header.Set(h, v)
		}
	}
	resp, err := s.proxy.Do(preq)
	if err != nil {
		if r.Context().Err() != nil {
			return proxyClientGone
		}
		if br != nil {
			br.Failure()
		}
		m.Counter("service_proxy", obs.L("result", "fallback")).Inc()
		if s.logger != nil {
			s.logger.Warn("proxy to replica failed",
				"owner", owner, "slot", slot, "decision_id", id, "err", err.Error())
		}
		return proxyFailed
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, resp.Body)
		if br != nil {
			br.Failure()
		}
		m.Counter("service_proxy", obs.L("result", "fallback")).Inc()
		if s.logger != nil {
			s.logger.Warn("replica answered 5xx",
				"owner", owner, "slot", slot, "decision_id", id, "status", resp.StatusCode)
		}
		return proxyFailed
	}
	// The peer answered: whatever the status (200, 404, even 429), it is
	// alive — close its breaker.
	if br != nil {
		br.Success()
	}

	h := w.Header()
	h.Set("Content-Type", "application/json")
	if did := resp.Header.Get("X-Decision-Id"); did != "" {
		h.Set("X-Decision-Id", did)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		h.Set("Retry-After", ra)
	}
	if resp.StatusCode == http.StatusOK {
		// The body came from a replica: our cache state is "remote", the
		// replica's own state (hit / miss / coalesced) rides along so load
		// tests can still count cluster-wide search work, and the replica
		// slot that answered rides in X-Cluster-Route so they can count
		// failovers.
		if oc := resp.Header.Get("X-Cache"); oc != "" {
			h.Set(headerCacheOrigin, oc)
		}
		h.Set("X-Cache", "remote")
		h.Set(headerClusterRoute, routeLabel(slot))
		m.Counter("service_cache", obs.L("result", "remote")).Inc()
		m.Counter("service_proxy", obs.L("result", "ok")).Inc()
	} else {
		m.Counter("service_proxy", obs.L("result", "relay_error")).Inc()
	}
	if resp.StatusCode == http.StatusOK && wantMeta(r) {
		// The peer was asked for the bare body (the proxy URL carries no
		// query); wrap it here so the envelope reports this node's view —
		// cache "remote", the origin's state in cache_origin.
		relayed, err := io.ReadAll(io.LimitReader(resp.Body, warmBodyLimit))
		if err == nil {
			s.writeDecision(w, r, h.Get("X-Decision-Id"), h.Get("X-Cache"), relayed)
			return proxyOK
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return proxyOK
}
