package repro

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/polybench"
	"repro/internal/prog"
	"repro/internal/scaler"
)

// TestPipelineAcrossSystems runs the complete inspect -> profile ->
// search -> execute pipeline for every reduced-size benchmark on every
// evaluation system and checks the framework's end-to-end contract:
// TOQ respected, never slower than baseline, trial budget tiny.
func TestPipelineAcrossSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline integration test")
	}
	for _, sys := range hw.Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			fw := core.NewFramework(sys)
			for _, w := range polybench.SmallSuite() {
				sp, err := fw.Scale(context.Background(), w, scaler.DefaultOptions())
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				if sp.Quality() < 0.90 {
					t.Errorf("%s: quality %v below TOQ", w.Name, sp.Quality())
				}
				if sp.Search.Final.Total > sp.Search.BaselineTime*(1+1e-9) {
					t.Errorf("%s: scaled total %v exceeds baseline %v",
						w.Name, sp.Search.Final.Total, sp.Search.BaselineTime)
				}
				if frac := float64(sp.Search.Trials) / sp.Search.SearchSpace; frac > 0.5 {
					t.Errorf("%s: tested fraction %v too large", w.Name, frac)
				}
				// The generated scaled program replays deterministically.
				res, err := sp.Run(prog.InputDefault)
				if err != nil {
					t.Fatalf("%s: re-run: %v", w.Name, err)
				}
				if math.Abs(res.Total-sp.Search.Final.Total) > 1e-15 {
					t.Errorf("%s: re-run differs from search measurement", w.Name)
				}
			}
		})
	}
}

// TestInspectorDatabaseRoundTripPipeline checks the save/load path the
// artifact uses to skip re-inspection.
func TestInspectorDatabaseRoundTripPipeline(t *testing.T) {
	sys := hw.System1()
	fw := core.NewFramework(sys)
	data, err := fw.DB().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := core.LoadFramework(hw.System1(), data)
	if err != nil {
		t.Fatal(err)
	}
	w := polybench.Gemm(24)
	a, err := fw.Scale(context.Background(), w, scaler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw2.Scale(context.Background(), w, scaler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Search.Final.Total != b.Search.Final.Total || a.Search.Trials != b.Search.Trials {
		t.Error("loaded-database pipeline must match fresh-inspection pipeline")
	}
}
