// Quickstart: the minimal end-to-end use of the PreScaler framework.
//
// It builds the GEMM benchmark at the paper's evaluation size, creates a
// framework for System 2 (the DGX Station the artifact recommends),
// lets the decision maker pick a memory-object precision configuration,
// prints the resulting scaling report, and re-runs the scaled program.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/polybench"
	"repro/internal/prog"
	"repro/internal/scaler"
)

func main() {
	// One-time system inspection for the target machine.
	sys := hw.System2()
	fmt.Printf("inspecting %s (%s + %s)...\n", sys.Name, sys.CPU.Name, sys.GPU.Name)
	fw := core.NewFramework(sys)

	// Pick a workload: GEMM at the paper's Table 4 size (0.25 MB).
	w := polybench.ByName("GEMM")

	// Profile, search, and generate the scaled program.
	sp, err := fw.Scale(context.Background(), w, scaler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sp.Describe())

	// The scaled program is a first-class artifact: run it again.
	res, err := sp.Run(prog.InputDefault)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-run: %.3f ms total (%.3f kernel, %.3f transfer), %.2fx over baseline\n",
		res.Total*1e3, res.KernelTime*1e3, res.TransferTime()*1e3,
		sp.Search.BaselineTime/res.Total)
}
