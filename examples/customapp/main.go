// Customapp: applying PreScaler to your own program (artifact §A.7).
//
// The framework is not tied to Polybench: any data-parallel program
// expressed as a prog.Workload — memory objects, kernels in the kir IR,
// and a host script — can be profiled and scaled. This example builds a
// small two-stage image pipeline (3x3 blur, then gain+bias tone mapping),
// scales it on System 3, prints the decision, and writes a Chrome
// trace-event timeline of the scaled execution to prescaler-trace.json
// (open it in chrome://tracing or Perfetto).
//
//	go run ./examples/customapp
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/clc"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kir"
	"repro/internal/ocl"
	"repro/internal/precision"
	"repro/internal/prog"
	"repro/internal/scaler"
)

// blurSrc is the blur stage written as plain OpenCL C; the clc frontend
// compiles it to the same IR the builder API produces.
const blurSrc = `
__kernel void blur(__global const double* img, __global double* tmp, int n) {
	int i = get_global_id(0);
	int j = get_global_id(1);
	if (i >= 1 && i < n - 1 && j >= 1 && j < n - 1) {
		tmp[i*n + j] = (1.0 / 9.0) * (
			img[(i-1)*n + (j-1)] + img[(i-1)*n + j] + img[(i-1)*n + (j+1)] +
			img[i*n + (j-1)]     + img[i*n + j]     + img[i*n + (j+1)] +
			img[(i+1)*n + (j-1)] + img[(i+1)*n + j] + img[(i+1)*n + (j+1)]);
	}
}
`

// buildPipeline defines the custom workload: img -> blur -> tone -> out.
func buildPipeline(n int) *prog.Workload {
	blur := clc.MustParseOne(blurSrc).Kernel

	tone := kir.NewKernel("tone", 1).In("tmp").Out("out").
		Body(
			// out = clamp(1.2*x + 4, 0, 255)
			kir.Put("out", kir.Gid(0),
				kir.Min(kir.Max(kir.Add(kir.Mul(kir.F(1.2), kir.At("tmp", kir.Gid(0))), kir.F(4)), kir.F(0)), kir.F(255))),
		).MustBuild()

	sz := n * n
	return &prog.Workload{
		Name:         "imagepipe",
		Original:     precision.Double,
		InputBytes:   sz * 8,
		DefaultRange: [2]float64{0, 256},
		Objects: []prog.ObjectSpec{
			{Name: "img", Len: sz, Kind: prog.ObjInput},
			{Name: "tmp", Len: sz, Kind: prog.ObjTemp},
			{Name: "out", Len: sz, Kind: prog.ObjOutput},
		},
		Kernels: map[string]*kir.Program{
			"blur": kir.MustCompile(blur),
			"tone": kir.MustCompile(tone),
		},
		MakeInputs: func(set prog.InputSet) map[string][]float64 {
			img := make([]float64, sz)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					// A deterministic synthetic photo: smooth gradients
					// plus texture, in pixel range.
					img[i*n+j] = float64((i*7+j*13)%251) * 0.9
				}
			}
			return map[string][]float64{"img": img}
		},
		Script: func(x *prog.Exec) error {
			if err := x.Write("img"); err != nil {
				return err
			}
			if err := x.Launch("blur", [2]int{n, n}, []string{"img", "tmp"}, int64(n)); err != nil {
				return err
			}
			if err := x.Launch("tone", [2]int{sz, 1}, []string{"tmp", "out"}); err != nil {
				return err
			}
			return x.Read("out")
		},
	}
}

func main() {
	w := buildPipeline(1024) // an 8 MB image
	sys := hw.System3()
	fmt.Printf("inspecting %s...\n", sys.Name)
	fw := core.NewFramework(sys)

	sp, err := fw.Scale(context.Background(), w, scaler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sp.Describe())

	res, err := sp.Run(prog.InputDefault)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("prescaler-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ocl.WriteChromeTrace(f, res.Events); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d trace events to prescaler-trace.json (open in chrome://tracing)\n", len(res.Events))
}
