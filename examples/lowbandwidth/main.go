// Lowbandwidth: system adaptivity across PCIe link widths.
//
// The same data-intensive program (ATAX, 16 MB input) is scaled on
// System 1 at PCIe x16 and on the identical machine limited to x8. With
// half the bus bandwidth the transfer share of execution time grows, so
// the decision maker finds more lower-precision opportunities and the
// speedup over the (slower) baseline increases — the Figure 11 story on
// one application.
//
//	go run ./examples/lowbandwidth
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/polybench"
	"repro/internal/prog"
	"repro/internal/scaler"
)

func main() {
	w := polybench.ByName("ATAX")

	for _, sys := range []*hw.System{hw.System1(), hw.System1x8()} {
		fmt.Printf("== %s (%s) ==\n", sys.Name, sys.Bus.String())
		fw := core.NewFramework(sys)

		htod, kernel, dtoh, err := fw.Categorize(context.Background(), w, prog.InputDefault)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline split: HtoD %.0f%%  kernel %.0f%%  DtoH %.0f%%\n",
			htod*100, kernel*100, dtoh*100)

		sp, err := fw.Scale(context.Background(), w, scaler.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(sp.Describe())
		fmt.Println()
	}
}
