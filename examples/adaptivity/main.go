// Adaptivity: input sets and TOQ change the chosen configuration.
//
// The CORR benchmark standardizes its data columns and accumulates
// squared deviations: with the default 0-2047 input range the variance
// accumulator overflows binary16, so half precision fails the quality
// target and the decision maker backs off to single — while random
// 0-1 inputs keep every intermediate in range and unlock half for most
// objects. Tightening the target output quality from 0.90 toward 0.999
// pushes objects back up the precision ladder. This is the Figure 12
// story made visible on one application.
//
//	go run ./examples/adaptivity
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/polybench"
	"repro/internal/precision"
	"repro/internal/prog"
	"repro/internal/scaler"
)

func main() {
	sys := hw.System1()
	fmt.Printf("inspecting %s...\n", sys.Name)
	fw := core.NewFramework(sys)
	w := polybench.Corr(160, 160)

	fmt.Println("\n-- input-set adaptivity (TOQ 0.90) --")
	for _, set := range prog.InputSets {
		sp, err := fw.Scale(context.Background(), w, scaler.Options{TOQ: 0.90, InputSet: set})
		if err != nil {
			log.Fatal(err)
		}
		report(string("input "+set.String()), sp)
	}

	fmt.Println("\n-- TOQ adaptivity (random input) --")
	for _, toq := range []float64{0.90, 0.99, 0.999} {
		sp, err := fw.Scale(context.Background(), w, scaler.Options{TOQ: toq, InputSet: prog.InputRandom})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("TOQ %.3f", toq), sp)
	}
}

func report(label string, sp *core.ScaledProgram) {
	d := sp.Search.TypeDist()
	fmt.Printf("%-14s speedup %.2fx  quality %.4f  types FP64:%d FP32:%d FP16:%d\n",
		label, sp.Speedup(), sp.Quality(),
		d[precision.Double], d[precision.Single], d[precision.Half])
}
