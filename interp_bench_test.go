// Interpreter-engine benchmarks: per-kernel tree-vs-batch sub-benchmarks
// over representative PolyBench kernels, plus a strip-size sweep. These
// isolate a single kernel launch (no transfers, no search, no cache), so
// the ratio between the /batch and /tree variants of a kernel is the
// interpreter speedup itself and is what the CI bench gate checks.
//
// Reproduce locally:
//
//	go test -run - -bench 'BenchmarkProgRun/' -benchmem .
package repro

import (
	"strconv"
	"testing"

	"repro/internal/kir"
	"repro/internal/polybench"
	"repro/internal/precision"
	"repro/internal/prog"
)

// interpBenchSpec pins one kernel launch out of a workload's script:
// the buffer arguments in kernel-parameter order, the NDRange, and the
// scalar int arguments, mirroring the workload's own x.Launch call.
type interpBenchSpec struct {
	name     string
	workload *prog.Workload
	kernel   string
	bufs     []string
	global   [2]int
	args     []int64
}

// interpBenchSpecs covers the kernel shapes that stress distinct
// interpreter paths: gemm (uniform inner loop, FMA-heavy), conv2d
// (straight-line 2D stencil), atax_k1 (1D row reduction), and corr_mat
// (gid-dependent loop bound — divergent lanes).
func interpBenchSpecs() []interpBenchSpec {
	gemm := polybench.Gemm(104)
	conv := polybench.TwoDConv(256, 256)
	atax := polybench.Atax(512, 512)
	corr := polybench.Corr(128, 128)
	return []interpBenchSpec{
		{"gemm", gemm, "gemm", []string{"A", "B", "C"}, [2]int{104, 104},
			[]int64{104, 104, 104}},
		{"conv2d", conv, "conv2d", []string{"A", "B"}, [2]int{256, 256},
			[]int64{256, 256}},
		{"atax_k1", atax, "atax_k1", []string{"A", "x", "tmp"}, [2]int{512, 1},
			[]int64{512, 512}},
		{"corr_mat", corr, "corr_mat", []string{"data", "symmat"}, [2]int{128, 1},
			[]int64{128, 128}},
	}
}

// interpEnv materializes the buffers for one spec and returns a ready
// ExecEnv. Input objects get the workload's default input set; temps and
// outputs start zeroed, as they would on a device.
func interpEnv(b *testing.B, spec interpBenchSpec) *kir.ExecEnv {
	b.Helper()
	inputs := spec.workload.MakeInputs(prog.InputDefault)
	bufs := make([]*precision.Array, len(spec.bufs))
	for i, name := range spec.bufs {
		obj := spec.workload.Object(name)
		if obj == nil {
			b.Fatalf("workload %s has no object %s", spec.workload.Name, name)
		}
		if data, ok := inputs[name]; ok {
			bufs[i] = precision.FromSlice(precision.Double, data)
		} else {
			bufs[i] = precision.NewArray(precision.Double, obj.Len)
		}
	}
	return &kir.ExecEnv{Bufs: bufs, IntArgs: spec.args, Global: spec.global}
}

// runInterpBench executes one kernel repeatedly under a pinned engine.
func runInterpBench(b *testing.B, spec interpBenchSpec, engine kir.Engine, strip int) {
	p := spec.workload.Kernels[spec.kernel]
	if p == nil {
		b.Fatalf("workload %s has no kernel %s", spec.workload.Name, spec.kernel)
	}
	env := interpEnv(b, spec)
	env.Engine = engine
	env.Strip = strip
	items := spec.global[0] * spec.global[1]
	// Warm once so compile-time work (batch tape construction) is not
	// attributed to the first measured iteration.
	if _, err := p.Run(env); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(env); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*items), "ns/item")
}

// BenchmarkProgRun compares the two interpreter engines kernel by
// kernel. The batch/tree ns/op ratio per kernel is the interpreter
// speedup; the CI bench gate requires it to stay above its floor.
func BenchmarkProgRun(b *testing.B) {
	for _, spec := range interpBenchSpecs() {
		spec := spec
		b.Run(spec.name+"/batch", func(b *testing.B) {
			runInterpBench(b, spec, kir.EngineBatch, 0)
		})
		b.Run(spec.name+"/tree", func(b *testing.B) {
			runInterpBench(b, spec, kir.EngineTree, 0)
		})
	}
}

// BenchmarkBatchStrip sweeps the batch engine's strip size on the
// FMA-heavy gemm kernel. Small strips pay per-strip setup and dispatch;
// throughput plateaus from DefaultStrip (256) onward, which is why that
// is the default (larger strips cost proportionally more arena memory
// for no measured win).
func BenchmarkBatchStrip(b *testing.B) {
	spec := interpBenchSpecs()[0] // gemm
	for _, strip := range []int{64, 256, 1024} {
		strip := strip
		b.Run(strconv.Itoa(strip), func(b *testing.B) {
			runInterpBench(b, spec, kir.EngineBatch, strip)
		})
	}
}
